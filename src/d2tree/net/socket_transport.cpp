#include "d2tree/net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "d2tree/net/endpoint.h"

namespace d2tree {

namespace {

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(config) {
  if (config_.worker_threads < 1) config_.worker_threads = 1;
  if (config_.max_queue_depth < 1) config_.max_queue_depth = 1;
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  loop_ = std::thread([this] { LoopMain(); });
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { WorkerMain(); });
}

SocketTransport::~SocketTransport() { Shutdown(/*drain=*/true); }

bool SocketTransport::AddPeer(const Address& addr,
                              const std::string& host_port) {
  std::string host;
  std::uint16_t port = 0;
  if (!SplitHostPort(host_port, &host, &port)) return false;
  MutexLock lock(&mu_);
  peers_[Key(addr)] = host_port;
  return true;
}

std::string SocketTransport::EndpointOf(const Address& addr) const {
  MutexLock lock(&mu_);
  const auto it = peers_.find(Key(addr));
  return it == peers_.end() ? std::string() : it->second;
}

bool SocketTransport::Bind(const Address& addr, Handler handler) {
  if (stopping_.load()) return false;
  if (!Transport::Bind(addr, std::move(handler))) return false;

  MutexLock lock(&mu_);
  for (const auto& [fd, bound] : listeners_)
    if (Key(bound) == Key(addr)) return true;  // handler swap only

  std::string endpoint = "127.0.0.1:0";
  if (const auto it = peers_.find(Key(addr)); it != peers_.end())
    endpoint = it->second;
  std::string host;
  std::uint16_t port = 0;
  if (!SplitHostPort(endpoint, &host, &port)) return false;
  if (host == "localhost") host = "127.0.0.1";

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) return false;

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      listen(fd, 128) != 0) {
    close(fd);
    return false;
  }
  sockaddr_in actual{};
  socklen_t actual_len = sizeof(actual);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &actual_len) != 0) {
    close(fd);
    return false;
  }
  peers_[Key(addr)] = host + ":" + std::to_string(ntohs(actual.sin_port));
  listeners_[fd] = addr;

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  return true;
}

bool SocketTransport::SetPartitioned(const Address& a, const Address& b,
                                     bool on) {
  MutexLock lock(&mu_);
  if (on)
    partitions_.insert(PairKey(a, b));
  else
    partitions_.erase(PairKey(a, b));
  return true;
}

Delivery SocketTransport::Send(const Address& from, const Address& to,
                               const Message& msg) {
  return Roundtrip(from, to, msg, FrameKind::kOneWay, nullptr);
}

Delivery SocketTransport::Call(const Address& from, const Address& to,
                               const Message& req, Message* resp) {
  return Roundtrip(from, to, req, FrameKind::kCall, resp);
}

Delivery SocketTransport::Roundtrip(const Address& from, const Address& to,
                                    const Message& msg, FrameKind kind,
                                    Message* resp) {
  const auto start = std::chrono::steady_clock::now();
  const auto fail = [&](DeliveryError e) {
    const Delivery d{false, ElapsedUs(start), e};
    Account(d);
    return d;
  };
  if (stopping_.load()) return fail(DeliveryError::kUndeliverable);

  const std::uint64_t corr =
      next_corr_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::uint8_t> frame =
      EncodeFrame(WireEnvelope{kind, corr, from, to, msg});

  auto cs = std::make_shared<CallState>();
  std::future<void> done = cs->done.get_future();
  {
    MutexLock lock(&mu_);
    if (partitions_.count(PairKey(from, to)) != 0)
      return fail(DeliveryError::kUndeliverable);
    Conn* conn = GetOrCreateConnLocked(to);
    if (conn == nullptr) return fail(DeliveryError::kUndeliverable);
    cs->conn_id = conn->id;
    pending_[corr] = cs;
    conn->out.insert(conn->out.end(), frame.begin(), frame.end());
  }
  WakeLoop();

  const auto deadline =
      std::chrono::duration<double, std::milli>(config_.call_timeout_ms);
  if (done.wait_for(deadline) != std::future_status::ready) {
    bool erased = false;
    {
      MutexLock lock(&mu_);
      erased = pending_.erase(corr) > 0;
    }
    if (erased) return fail(DeliveryError::kTimeout);
    // The loop claimed the call between our timeout and the erase; its
    // verdict (set before the promise fires) wins — wait it in.
    done.wait();
  }
  const Delivery d{cs->ok, ElapsedUs(start),
                   cs->ok ? DeliveryError::kNone : cs->error};
  if (d.delivered && resp != nullptr) *resp = cs->resp;
  Account(d);
  return d;
}

SocketTransport::Conn* SocketTransport::GetOrCreateConnLocked(
    const Address& to) {
  const std::uint64_t peer_key = Key(to);
  const auto pit = peers_.find(peer_key);
  if (pit == peers_.end()) return nullptr;

  if (const auto cit = conn_fd_by_peer_.find(peer_key);
      cit != conn_fd_by_peer_.end()) {
    const auto f = conns_.find(cit->second);
    if (f != conns_.end()) return f->second.get();
  }

  std::string host;
  std::uint16_t port = 0;
  if (!SplitHostPort(pit->second, &host, &port)) return nullptr;
  if (host == "localhost") host = "127.0.0.1";
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) return nullptr;

  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  SetNoDelay(fd);
  const int rc = connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc < 0 && errno != EINPROGRESS) {
    close(fd);
    return nullptr;
  }

  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->peer_key = peer_key;
  conn->connecting = rc < 0;
  conn->want_write = true;  // EPOLLOUT armed below for connect completion
  if (peers_dialed_.count(peer_key) != 0)
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  peers_dialed_.insert(peer_key);

  Conn* raw = conn.get();
  conns_[fd] = std::move(conn);
  conn_fd_by_id_[raw->id] = fd;
  conn_fd_by_peer_[peer_key] = fd;

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  return raw;
}

void SocketTransport::WakeLoop() {
  const std::uint64_t one = 1;
  ssize_t rc;
  do {
    rc = write(wake_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
}

// ---------------------------------------------------------------------------
// Event loop.

void SocketTransport::LoopMain() {
  epoll_event events[64];
  while (!loop_exit_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      bool is_listener = false;
      {
        MutexLock lock(&mu_);
        is_listener = listeners_.count(fd) != 0;
      }
      if (is_listener)
        HandleAccept(fd);
      else
        HandleConnEvent(fd, events[i].events);
    }
    // Drain caller-enqueued bytes onto the wire for every live connection.
    std::vector<Conn*> live;
    {
      MutexLock lock(&mu_);
      live.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) live.push_back(conn.get());
    }
    for (Conn* conn : live) FlushConn(conn);
  }
}

void SocketTransport::HandleAccept(int listen_fd) {
  while (true) {
    const int fd = accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (or the listener is going away)
    SetNoDelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->server_side = true;
    {
      MutexLock lock(&mu_);
      conn_fd_by_id_[conn->id] = fd;
      conns_[fd] = std::move(conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void SocketTransport::HandleConnEvent(int fd, std::uint32_t events) {
  Conn* conn = nullptr;
  {
    MutexLock lock(&mu_);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // raced with a teardown
    conn = it->second.get();
  }

  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    // Connection refused / reset: the same verdict SimNet gives a
    // partitioned link — the peer is unreachable.
    TearDownConn(fd, DeliveryError::kUndeliverable);
    return;
  }
  if ((events & EPOLLOUT) != 0 && conn->connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      TearDownConn(fd, DeliveryError::kUndeliverable);
      return;
    }
    conn->connecting = false;
  }
  if ((events & EPOLLIN) != 0) {
    while (true) {
      std::uint8_t buf[65536];
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->in.insert(conn->in.end(), buf, buf + n);
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      TearDownConn(fd, DeliveryError::kUndeliverable);  // EOF or error
      return;
    }
    ParseFrames(conn);
  }
}

void SocketTransport::ParseFrames(Conn* conn) {
  while (true) {
    WireEnvelope env;
    std::size_t consumed = 0;
    const DecodeStatus st =
        DecodeFrame(conn->in.data(), conn->in.size(), &env, &consumed);
    if (st == DecodeStatus::kNeedMore) return;
    if (st == DecodeStatus::kCorrupt) {
      // One corrupt frame poisons the stream — framing offsets can no
      // longer be trusted, so the connection dies (the peer reconnects).
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      TearDownConn(conn->fd, DeliveryError::kUndeliverable);
      return;
    }
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<std::ptrdiff_t>(consumed));
    DispatchFrame(conn, std::move(env));
  }
}

void SocketTransport::DispatchFrame(Conn* conn, WireEnvelope env) {
  switch (env.kind) {
    case FrameKind::kResponse:
      CompleteCall(env.correlation_id, true, DeliveryError::kNone, &env.msg);
      return;
    case FrameKind::kAck:
      CompleteCall(env.correlation_id, true, DeliveryError::kNone, nullptr);
      return;
    case FrameKind::kOneWay:
    case FrameKind::kCall:
      break;
  }

  // Inbound request. At-most-once: a correlation id already seen from this
  // sender is answered from the response cache, never re-executed.
  const std::uint64_t dkey = DedupKey(env.from, env.correlation_id);
  bool enqueue = false;
  {
    MutexLock lock(&mu_);
    if (const auto it = dedup_.find(dkey); it != dedup_.end()) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.conn_id = conn->id;  // answer on the live connection
      if (it->second.done) QueueOnLoop(conn, it->second.response);
      return;  // in-flight: the worker's answer will land on conn->id
    }
    {
      MutexLock qlock(&queue_mu_);
      if (jobs_.size() >= config_.max_queue_depth) {
        // Back-pressure. A kCall gets an immediate "busy" answer; a
        // kOneWay is simply not acked so the sender's ARQ retries later.
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        if (env.kind == FrameKind::kCall) {
          Message busy = env.msg;
          busy.status = MdsStatus::kUnavailable;
          QueueOnLoop(conn, EncodeFrame(WireEnvelope{FrameKind::kResponse,
                                                     env.correlation_id,
                                                     env.to, env.from, busy}));
        }
        return;
      }
    }
    DedupEntry entry;
    entry.conn_id = conn->id;
    if (env.kind == FrameKind::kOneWay) {
      // One-ways are acked at the loop, before the handler runs: the ack
      // means "received exactly once", not "processed".
      entry.done = true;
      entry.response = EncodeFrame(WireEnvelope{
          FrameKind::kAck, env.correlation_id, env.to, env.from, Message{}});
      QueueOnLoop(conn, entry.response);
    }
    dedup_[dkey] = std::move(entry);
    dedup_fifo_.push_back(dkey);
    while (dedup_.size() > config_.dedup_cache_entries) {
      dedup_.erase(dedup_fifo_.front());
      dedup_fifo_.pop_front();
    }
    enqueue = true;
  }
  if (enqueue) {
    {
      MutexLock qlock(&queue_mu_);
      jobs_.push_back(Job{std::move(env), conn->id});
    }
    jobs_sem_.release();
  }
}

void SocketTransport::QueueOnLoop(Conn* conn,
                                  std::vector<std::uint8_t> frame) {
  conn->wbuf.insert(conn->wbuf.end(), frame.begin(), frame.end());
}

void SocketTransport::FlushConn(Conn* conn) {
  {
    MutexLock lock(&mu_);
    if (!conn->out.empty()) {
      conn->wbuf.insert(conn->wbuf.end(), conn->out.begin(), conn->out.end());
      conn->out.clear();
    }
  }
  while (!conn->connecting && conn->wbuf_off < conn->wbuf.size()) {
    const ssize_t n =
        send(conn->fd, conn->wbuf.data() + conn->wbuf_off,
             conn->wbuf.size() - conn->wbuf_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wbuf_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    TearDownConn(conn->fd, DeliveryError::kUndeliverable);
    return;
  }
  if (conn->wbuf_off == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wbuf_off = 0;
  }
  UpdateInterest(conn);
}

void SocketTransport::UpdateInterest(Conn* conn) {
  const bool need_write = conn->connecting || conn->wbuf_off < conn->wbuf.size();
  if (need_write == conn->want_write) return;
  conn->want_write = need_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (need_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SocketTransport::TearDownConn(int fd, DeliveryError error) {
  std::vector<std::shared_ptr<CallState>> victims;
  {
    MutexLock lock(&mu_);
    const auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    const std::uint64_t conn_id = it->second->id;
    const std::uint64_t peer_key = it->second->peer_key;
    for (auto p = pending_.begin(); p != pending_.end();) {
      if (p->second->conn_id == conn_id) {
        victims.push_back(p->second);
        p = pending_.erase(p);
      } else {
        ++p;
      }
    }
    conn_fd_by_id_.erase(conn_id);
    if (const auto pit = conn_fd_by_peer_.find(peer_key);
        pit != conn_fd_by_peer_.end() && pit->second == fd)
      conn_fd_by_peer_.erase(pit);
    conns_.erase(it);
  }
  (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  for (const auto& cs : victims) {
    cs->ok = false;
    cs->error = error;
    cs->done.set_value();
  }
}

// ---------------------------------------------------------------------------
// Worker pool.

void SocketTransport::WorkerMain() {
  while (true) {
    jobs_sem_.acquire();
    Job job;
    bool have = false;
    {
      MutexLock lock(&queue_mu_);
      if (!jobs_.empty()) {
        job = std::move(jobs_.front());
        jobs_.pop_front();
        have = true;
        jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!have) {
      if (worker_exit_.load(std::memory_order_acquire)) return;
      continue;
    }

    handled_requests_.fetch_add(1, std::memory_order_relaxed);
    const Handler handler = FindHandler(job.env.to);
    Message answer;
    if (handler) {
      answer = handler(job.env.from, job.env.msg);
    } else {
      // Listening endpoint, no bound handler (shut down between accept
      // and dispatch): an explicit busy/unavailable answer, not silence.
      answer = job.env.msg;
      answer.status = MdsStatus::kUnavailable;
    }

    if (job.env.kind == FrameKind::kCall) {
      const std::vector<std::uint8_t> frame = EncodeFrame(
          WireEnvelope{FrameKind::kResponse, job.env.correlation_id,
                       job.env.to, job.env.from, answer});
      std::uint64_t target = job.conn_id;
      {
        MutexLock lock(&mu_);
        const std::uint64_t dkey =
            DedupKey(job.env.from, job.env.correlation_id);
        if (const auto it = dedup_.find(dkey); it != dedup_.end()) {
          it->second.done = true;
          it->second.response = frame;
          target = it->second.conn_id;  // a retry may have reconnected
        }
        if (const auto fit = conn_fd_by_id_.find(target);
            fit != conn_fd_by_id_.end()) {
          Conn* conn = conns_.at(fit->second).get();
          conn->out.insert(conn->out.end(), frame.begin(), frame.end());
        }
      }
      WakeLoop();
    }
    jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void SocketTransport::CompleteCall(std::uint64_t corr, bool ok,
                                   DeliveryError error, const Message* resp) {
  std::shared_ptr<CallState> cs;
  {
    MutexLock lock(&mu_);
    const auto it = pending_.find(corr);
    if (it == pending_.end()) return;  // the caller already timed out
    cs = it->second;
    pending_.erase(it);
  }
  cs->ok = ok;
  cs->error = error;
  if (resp != nullptr) cs->resp = *resp;
  cs->done.set_value();
}

// ---------------------------------------------------------------------------
// Shutdown.

void SocketTransport::Shutdown(bool drain) {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true);

  // Stop accepting: close every listener first so the drain is bounded.
  {
    MutexLock lock(&mu_);
    for (const auto& [fd, addr] : listeners_) {
      (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      close(fd);
    }
    listeners_.clear();
  }

  if (drain) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      bool idle = false;
      {
        MutexLock lock(&queue_mu_);
        idle = jobs_.empty() &&
               jobs_in_flight_.load(std::memory_order_relaxed) == 0;
      }
      if (idle) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  loop_exit_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();

  worker_exit_.store(true, std::memory_order_release);
  jobs_sem_.release(static_cast<std::ptrdiff_t>(workers_.size()));
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();

  // Fail whatever is still in flight and release every descriptor.
  std::vector<std::shared_ptr<CallState>> residual;
  {
    MutexLock lock(&mu_);
    for (const auto& [corr, cs] : pending_) residual.push_back(cs);
    pending_.clear();
    for (const auto& [fd, conn] : conns_) close(fd);
    conns_.clear();
    conn_fd_by_id_.clear();
    conn_fd_by_peer_.clear();
  }
  for (const auto& cs : residual) {
    cs->ok = false;
    cs->error = DeliveryError::kUndeliverable;
    cs->done.set_value();
  }
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  wake_fd_ = -1;
  epoll_fd_ = -1;
}

}  // namespace d2tree
