#include "d2tree/net/transport.h"

namespace d2tree {

Delivery Transport::SendReliable(const Address& from, const Address& to,
                                 const Message& msg, int max_tries) {
  Delivery total{false, 0.0};
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    const Delivery d = Send(from, to, msg);
    total.latency_us += d.latency_us;
    if (d.delivered) {
      total.delivered = true;
      return total;
    }
  }
  return total;
}

Delivery InProcessTransport::Send(const Address& from, const Address& to,
                                  const Message& msg) {
  (void)from, (void)to, (void)msg;
  const Delivery d{true, 0.0};
  Account(d);
  return d;
}

}  // namespace d2tree
