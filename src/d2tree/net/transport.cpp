#include "d2tree/net/transport.h"

#include <utility>

namespace d2tree {

const char* DeliveryErrorName(DeliveryError e) {
  switch (e) {
    case DeliveryError::kNone:
      return "none";
    case DeliveryError::kTimeout:
      return "timeout";
    case DeliveryError::kUndeliverable:
      return "undeliverable";
  }
  return "?";
}

Delivery Transport::SendReliable(const Address& from, const Address& to,
                                 const Message& msg, int max_tries) {
  Delivery total{false, 0.0, DeliveryError::kNone};
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    const Delivery d = Send(from, to, msg);
    total.latency_us += d.latency_us;
    total.error = d.error;
    if (d.delivered) {
      total.delivered = true;
      total.error = DeliveryError::kNone;
      return total;
    }
  }
  return total;
}

bool Transport::Bind(const Address& addr, Handler handler) {
  MutexLock lock(&handlers_mu_);
  handlers_[AddressKey(addr)] = std::move(handler);
  return true;
}

Transport::Handler Transport::FindHandler(const Address& addr) const {
  MutexLock lock(&handlers_mu_);
  const auto it = handlers_.find(AddressKey(addr));
  return it == handlers_.end() ? Handler{} : it->second;
}

Delivery Transport::Call(const Address& from, const Address& to,
                         const Message& req, Message* resp) {
  const Handler handler = FindHandler(to);
  if (!handler) {
    // Nobody is bound at `to`: the peer does not exist as far as this
    // transport is concerned — undeliverable, and the request leg is
    // still accounted (the client paid for trying).
    const Delivery d{false, 0.0, DeliveryError::kUndeliverable};
    Account(d);
    return d;
  }
  Delivery total = Send(from, to, req);
  if (!total.delivered) return total;
  const Message answer = handler(from, req);
  const Delivery back = Send(to, from, answer);
  total.latency_us += back.latency_us;
  if (!back.delivered) {
    // The handler ran but the response leg was lost: to the caller this
    // is indistinguishable from a timeout (the side effect may exist).
    total.delivered = false;
    total.error = back.error == DeliveryError::kUndeliverable
                      ? DeliveryError::kUndeliverable
                      : DeliveryError::kTimeout;
    return total;
  }
  if (resp != nullptr) *resp = answer;
  return total;
}

Delivery InProcessTransport::Send(const Address& from, const Address& to,
                                  const Message& msg) {
  (void)from, (void)to, (void)msg;
  const Delivery d{true, 0.0, DeliveryError::kNone};
  Account(d);
  return d;
}

}  // namespace d2tree
