// Endpoint naming shared by the socket transport's users: `mdsd`,
// `d2bench-client` and the lifecycle tests all describe a cluster as a
// comma-separated peer list
//
//   mds0=127.0.0.1:7100,mds1=127.0.0.1:7101,monitor=127.0.0.1:7190
//
// where each token names one Address (net/message.h): "client",
// "monitor", or "mds<N>". This header is the one place that mapping is
// defined, so flags, logs and tests cannot drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "d2tree/net/message.h"

namespace d2tree {

/// "client" / "monitor" / "mds<N>".
std::string AddressToken(const Address& addr);

/// Inverse of AddressToken; nullopt on anything else.
std::optional<Address> ParseAddressToken(const std::string& token);

struct PeerSpec {
  Address addr;
  std::string host_port;  // "host:port"

  bool operator==(const PeerSpec&) const = default;
};

/// Parses "name=host:port,name=host:port,...". nullopt on malformed
/// tokens, duplicate names, or a missing '='/':'.
std::optional<std::vector<PeerSpec>> ParsePeerList(const std::string& spec);

/// Splits "host:port" (port in [0, 65535]); false on malformed input.
[[nodiscard]] bool SplitHostPort(const std::string& host_port,
                                 std::string* host, std::uint16_t* port);

}  // namespace d2tree
