// Retry/backoff discipline for control-plane messages.
//
// One-try control sends turn every transient drop into a lost heartbeat or
// a stalled migration; blind fixed-count retransmits (the old
// Transport::SendReliable) hammer a congested link with no pacing and no
// bound on how long a round blocks. A RetryPolicy gives every
// control-plane exchange the standard production discipline: capped
// exponential backoff with deterministic seeded jitter, bounded by both an
// attempt count and a per-operation deadline on *simulated* time — the
// backoff is charged as latency, not slept, so tests stay fast and runs
// stay reproducible. Retries are only safe because receivers deduplicate:
// pending-pool pulls carry a migration id the receiving MDS journals and
// checks (MdsServer::ApplyPull), so a re-delivered pull is dropped, never
// double-applied.
#pragma once

#include <cstdint>

#include "d2tree/net/transport.h"

namespace d2tree {

struct RetryPolicy {
  /// Total send attempts (first try included). 1 = no retries.
  int max_attempts = 4;
  /// Backoff before retry k (1-based) is min(cap, base · 2^(k-1)),
  /// scaled by jitter in [0.5, 1.5); simulated µs.
  double base_backoff_us = 100.0;
  double backoff_cap_us = 1600.0;
  /// Per-operation budget, simulated µs: once the accumulated latency of
  /// attempts + backoffs exceeds this, the op gives up (counted in
  /// deadline_exceeded_total even when attempts remain).
  double deadline_us = 10000.0;
  /// Jitter stream seed; combined with the caller's nonce so concurrent
  /// ops draw independent, reproducible jitter.
  std::uint64_t jitter_seed = 0x9E7121ULL;

  /// Heartbeats: absence is the failure detector, so the budget is tight —
  /// one quick retransmit inside the heartbeat interval, then silence.
  static RetryPolicy Heartbeat() {
    return {.max_attempts = 2,
            .base_backoff_us = 50.0,
            .backoff_cap_us = 50.0,
            .deadline_us = 500.0};
  }
};

struct RetryOutcome {
  Delivery delivery;  // latency_us totals every attempt + backoff
  int attempts = 0;
  bool deadline_exceeded = false;

  int retries() const noexcept { return attempts > 0 ? attempts - 1 : 0; }
};

/// Sends `msg` under `policy`. `nonce` decorrelates the jitter of
/// concurrent callers (use the migration id, target id, or a counter);
/// the same (policy seed, nonce, link fate) always replays identically.
RetryOutcome SendWithRetry(Transport& transport, const Address& from,
                           const Address& to, const Message& msg,
                           const RetryPolicy& policy, std::uint64_t nonce);

}  // namespace d2tree
