#include "d2tree/net/retry.h"

#include <algorithm>

#include "d2tree/common/rng.h"

namespace d2tree {

RetryOutcome SendWithRetry(Transport& transport, const Address& from,
                           const Address& to, const Message& msg,
                           const RetryPolicy& policy, std::uint64_t nonce) {
  RetryOutcome out;
  out.delivery.delivered = false;  // Delivery defaults to true
  double backoff = policy.base_backoff_us;
  for (int attempt = 0; attempt < std::max(1, policy.max_attempts);
       ++attempt) {
    const Delivery d = transport.Send(from, to, msg);
    ++out.attempts;
    out.delivery.latency_us += d.latency_us;
    if (d.delivered) {
      out.delivery.delivered = true;
      return out;
    }
    if (attempt + 1 >= std::max(1, policy.max_attempts)) break;
    // Deterministic jitter in [0.5, 1.5): hash (seed, nonce, attempt) so
    // concurrent ops decorrelate but the same run replays identically.
    std::uint64_t sm = policy.jitter_seed ^
                       (nonce * 0x9E3779B97F4A7C15ULL) ^
                       static_cast<std::uint64_t>(attempt);
    const double jitter =
        0.5 + static_cast<double>(SplitMix64(sm) >> 11) * 0x1.0p-53;
    out.delivery.latency_us += backoff * jitter;
    backoff = std::min(backoff * 2.0, policy.backoff_cap_us);
    if (out.delivery.latency_us > policy.deadline_us) {
      // Budget exhausted with attempts to spare: a deadline miss, not a
      // retransmit-limit miss — callers track the two separately.
      out.deadline_exceeded = true;
      return out;
    }
  }
  out.deadline_exceeded = out.delivery.latency_us > policy.deadline_us;
  return out;
}

}  // namespace d2tree
