// SimNetTransport — a simulated network with latency, loss and partitions.
//
// Each directed link (from → to) carries a message sequence counter; the
// fate of message n on a link is a pure hash of (seed, link, n), so a
// single-threaded run replays byte-identically under the same seed, and a
// multi-threaded run — where only *which thread* draws a given sequence
// number varies — still accrues the same multiset of latencies whenever
// the per-link message counts match. Latency is base + exponential jitter
// (the long-tail shape real RPC latencies show); a lost or partitioned
// leg costs the sender its timeout instead.
//
// Faults: per-link drop probability (drop windows) and link-level
// partitions, settable at runtime through the Transport fault surface —
// this is how FaultSchedule's kLinkDropStart/kMonitorPartitionStart events
// reach the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/net/transport.h"

namespace d2tree {

struct SimNetConfig {
  std::uint64_t seed = 0x5E7D2;
  /// Fixed per-leg propagation delay, µs.
  double base_latency_us = 100.0;
  /// Mean of the exponential jitter added on top, µs (0 = none).
  double jitter_mean_us = 30.0;
  /// Baseline drop probability of every link (per-link overrides win).
  double drop_probability = 0.0;
  /// What a lost/partitioned leg costs the sender, µs (RPC timeout).
  double timeout_us = 1000.0;
};

class SimNetTransport final : public Transport {
 public:
  explicit SimNetTransport(SimNetConfig config = {});

  Delivery Send(const Address& from, const Address& to,
                const Message& msg) override;

  [[nodiscard]] bool SetLinkDropRate(const Address& a, const Address& b,
                                     double probability) override;
  [[nodiscard]] bool SetPartitioned(const Address& a, const Address& b,
                                    bool on) override;

  const SimNetConfig& config() const noexcept { return config_; }

  /// When enabled, every Send appends one line ("from->to type seq=N
  /// 123.456us" or "... DROPPED") to an in-memory log — the determinism
  /// tests diff it across runs. Off by default (hot-path cost).
  void set_record_log(bool on);
  /// Drains and returns the log.
  std::vector<std::string> TakeLog();

 private:
  struct LinkState {
    std::atomic<std::uint64_t> seq{0};
    /// Drop probability bits (std::atomic<double> lacks fetch ops and
    /// portability guarantees we rely on; bit-cast through uint64).
    std::atomic<std::uint64_t> drop_bits{0};
    std::atomic<bool> partitioned{false};
  };

  static std::uint64_t DirectedKey(const Address& from,
                                   const Address& to) noexcept;
  LinkState& Link(std::uint64_t key) D2T_EXCLUDES(links_mu_);
  LinkState* FindLink(std::uint64_t key) D2T_EXCLUDES(links_mu_);

  SimNetConfig config_;
  /// Guards the link map's *shape* only (LinkState fields are atomics);
  /// taken below every cluster lock — Send runs under the placement
  /// epoch's shared hold.
  mutable SharedMutex links_mu_ D2T_ACQUIRED_BEFORE(log_mu_)
      D2T_LOCK_RANK(50);
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkState>> links_
      D2T_GUARDED_BY(links_mu_);

  std::atomic<bool> record_log_{false};
  /// Innermost lock of the whole system: only ever taken last, inside
  /// Send, after the link map hold is already released.
  Mutex log_mu_ D2T_LOCK_RANK(60);
  std::vector<std::string> log_ D2T_GUARDED_BY(log_mu_);
};

}  // namespace d2tree
