#include "d2tree/net/endpoint.h"

#include <cstdlib>

namespace d2tree {

std::string AddressToken(const Address& addr) {
  switch (addr.kind) {
    case PeerKind::kClient:
      return "client";
    case PeerKind::kMonitor:
      return "monitor";
    case PeerKind::kMds:
      return "mds" + std::to_string(addr.id);
  }
  return "?";
}

std::optional<Address> ParseAddressToken(const std::string& token) {
  if (token == "client") return ClientAddress();
  if (token == "monitor") return MonitorAddress();
  if (token.size() > 3 && token.compare(0, 3, "mds") == 0) {
    char* end = nullptr;
    const long id = std::strtol(token.c_str() + 3, &end, 10);
    if (end != nullptr && *end == '\0' && id >= 0 && id < 1'000'000)
      return MdsAddress(static_cast<MdsId>(id));
  }
  return std::nullopt;
}

bool SplitHostPort(const std::string& host_port, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= host_port.size())
    return false;
  char* end = nullptr;
  const long p = std::strtol(host_port.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p < 0 || p > 65535) return false;
  *host = host_port.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

std::optional<std::vector<PeerSpec>> ParsePeerList(const std::string& spec) {
  std::vector<PeerSpec> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (comma == spec.size()) break;  // trailing comma tolerated
      return std::nullopt;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::optional<Address> addr = ParseAddressToken(item.substr(0, eq));
    if (!addr.has_value()) return std::nullopt;
    std::string host;
    std::uint16_t port = 0;
    const std::string host_port = item.substr(eq + 1);
    if (!SplitHostPort(host_port, &host, &port)) return std::nullopt;
    for (const PeerSpec& seen : out)
      if (seen.addr == *addr) return std::nullopt;  // duplicate name
    out.push_back({*addr, host_port});
    if (comma == spec.size()) break;
  }
  return out;
}

}  // namespace d2tree
