// Wire codec for the socket transport (DESIGN.md §10).
//
// Every frame on a TCP connection is length-prefixed and CRC-framed with
// the same discipline as the WAL (durability/wal.h):
//
//   ┌────────────┬────────────┬──────────────────────────────┐
//   │ u32 length │ u32 crc32  │ body (`length` bytes)         │
//   └────────────┴────────────┴──────────────────────────────┘
//
// all integers little-endian, the CRC covering the body only. The body is
// an envelope — wire version, frame kind, correlation id, from/to
// addresses — followed by the full serialized Message (net/message.h),
// including the name and record payloads, so everything the in-process
// transports hand over by reference round-trips byte-exactly across
// processes.
//
// Frame kinds: kOneWay (fire-and-forget, acked at the receiving event
// loop), kCall (expects a kResponse from the bound handler), kResponse
// and kAck (terminate the correlation id they echo).
//
// Decoding is streaming and total: DecodeFrame peels at most one frame
// off a byte buffer and reports kNeedMore for a short prefix, kCorrupt
// for a CRC mismatch, an oversized length, or a body that does not parse
// — it never throws and never reads past `len` (the fuzz suite in
// tests/test_wire_codec.cpp holds it to that under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "d2tree/net/message.h"

namespace d2tree {

inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header: u32 body length + u32 CRC32(body).
inline constexpr std::size_t kWireHeaderBytes = 8;

enum class FrameKind : std::uint8_t {
  kOneWay = 0,  // Send(): no response expected, event loop acks receipt
  kCall,        // Call(): the bound handler's kResponse closes the id
  kResponse,    // handler answer, echoes the request's correlation id
  kAck,         // loop-level receipt for a kOneWay frame
};

const char* FrameKindName(FrameKind kind);

/// One frame's decoded body: the routing envelope plus the message.
struct WireEnvelope {
  FrameKind kind = FrameKind::kOneWay;
  std::uint64_t correlation_id = 0;
  Address from;
  Address to;
  Message msg;

  bool operator==(const WireEnvelope&) const = default;
};

/// Serializes `env` into a complete frame (header + body). Names longer
/// than kMaxWireNameBytes are truncated to the bound — the encoder never
/// produces a frame its own decoder rejects.
std::vector<std::uint8_t> EncodeFrame(const WireEnvelope& env);

enum class [[nodiscard]] DecodeStatus : std::uint8_t {
  kOk = 0,    // one frame decoded; `*consumed` bytes eaten
  kNeedMore,  // prefix of a valid frame; read more bytes and retry
  kCorrupt,   // CRC mismatch / oversized length / malformed body
};

/// Attempts to peel one frame off the front of [data, data+len). On kOk
/// fills `*env` and sets `*consumed` to the frame's total size; on
/// kCorrupt sets `*consumed` to the bytes that must be discarded (the
/// whole claimed frame when its length field is plausible, else 0 — a
/// socket connection is torn down on any corrupt frame regardless).
DecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len,
                         WireEnvelope* env, std::size_t* consumed);

}  // namespace d2tree
