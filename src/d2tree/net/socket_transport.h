// SocketTransport — the message path over real TCP sockets (DESIGN.md §10).
//
// A single epoll event-loop thread owns every file descriptor (listeners,
// accepted server connections, pooled client connections); a bounded pool
// of worker threads executes the bound handlers; calling threads never
// touch a socket — they enqueue an encoded frame, wake the loop through
// an eventfd, and wait on a per-call future keyed by correlation id.
// That gives request pipelining for free: any number of calls from any
// number of threads multiplex over the one pooled connection per peer.
//
// Connection management: client connections are pooled per destination
// address and created lazily with a non-blocking connect. A failed or
// torn connection fails every call in flight on it with kUndeliverable
// and is evicted from the pool; the next call to that peer dials a fresh
// connection (reconnect-on-failure, counted in reconnects()) — exactly
// the verdict the cluster's bounded failover path expects from a crashed
// peer. A call that gets no answer inside `call_timeout_ms` fails with
// kTimeout: the request may have executed server-side, which is why the
// receiving side keeps a bounded response cache keyed by (sender,
// correlation id) and answers a redelivered correlation id from the
// cache instead of re-executing the handler (at-most-once execution,
// counted in dedup_hits()).
//
// Fault surface: SetPartitioned is honoured locally — a partitioned peer
// is refused at the send gate with kUndeliverable, so fault schedules
// behave identically on SimNet and real sockets. SetLinkDropRate is
// refused (a real TCP link has no tunable loss model).
//
// Shutdown(drain=true) stops accepting, lets the workers drain the
// request queue, fails residual in-flight calls, joins every thread and
// closes every socket — the clean-SIGTERM path of the mdsd daemon.
//
// Linux-only (epoll + eventfd), like the rest of the target environment.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/net/transport.h"
#include "d2tree/net/wire.h"

namespace d2tree {

struct SocketTransportConfig {
  /// RPC deadline: a Call/Send with no answer by then fails with kTimeout.
  double call_timeout_ms = 2000.0;
  /// Handler worker threads (bounded pool).
  int worker_threads = 4;
  /// Requests parked for the workers beyond which new ones are rejected
  /// with MdsStatus::kUnavailable (busy server back-pressure).
  std::size_t max_queue_depth = 1024;
  /// Response-cache entries kept for correlation-id redelivery dedup.
  std::size_t dedup_cache_entries = 4096;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});
  ~SocketTransport() override;

  /// Registers `addr` ⇄ "host:port" (numeric IPv4 or "localhost"). Both
  /// local (to be Bound) and remote peers are declared this way; a
  /// Send/Call to an undeclared address is kUndeliverable.
  [[nodiscard]] bool AddPeer(const Address& addr,
                             const std::string& host_port);
  /// The endpoint registered (or discovered by Bind) for `addr`; "" if
  /// unknown.
  std::string EndpointOf(const Address& addr) const;

  /// Starts listening on `addr`'s endpoint (auto-registering
  /// "127.0.0.1:0" when undeclared — EndpointOf reports the actual port)
  /// and binds `handler` for dispatched requests. False on socket errors.
  [[nodiscard]] bool Bind(const Address& addr, Handler handler) override;

  Delivery Send(const Address& from, const Address& to,
                const Message& msg) override;
  Delivery Call(const Address& from, const Address& to, const Message& req,
                Message* resp) override;

  [[nodiscard]] bool SetPartitioned(const Address& a, const Address& b,
                                    bool on) override;

  /// Stops the transport: no new connections, optional queue drain,
  /// residual calls failed, threads joined, sockets closed. Idempotent.
  void Shutdown(bool drain = true);

  const SocketTransportConfig& config() const noexcept { return config_; }

  // --- Telemetry beyond the base counters.
  std::uint64_t reconnects() const noexcept { return reconnects_.load(); }
  std::uint64_t dedup_hits() const noexcept { return dedup_hits_.load(); }
  std::uint64_t corrupt_frames() const noexcept {
    return corrupt_frames_.load();
  }
  std::uint64_t busy_rejections() const noexcept {
    return busy_rejections_.load();
  }
  std::uint64_t handled_requests() const noexcept {
    return handled_requests_.load();
  }

 private:
  /// One TCP connection. Ownership of the fields is split: `out` (and the
  /// dial-time fields set before the connection is published) are guarded
  /// by mu_; `in`, `wbuf`, `wbuf_off`, `connecting` and `want_write` are
  /// touched only by the event-loop thread after it finds the connection
  /// through the mu_-locked maps (which establishes the happens-before
  /// edge with the dialing thread).
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::uint64_t peer_key = 0;  // destination address (client conns; 0 = accepted)
    bool server_side = false;
    bool connecting = false;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;   // guarded by mu_
    std::vector<std::uint8_t> wbuf;  // loop-owned flush buffer
    std::size_t wbuf_off = 0;
    bool want_write = false;
  };

  /// One in-flight outbound RPC, shared between the calling thread and
  /// the event loop. The loop fills the result fields and then fires the
  /// promise; the caller reads them only after the future resolves.
  struct CallState {
    std::promise<void> done;
    Message resp;
    bool ok = false;
    DeliveryError error = DeliveryError::kTimeout;
    std::uint64_t conn_id = 0;
  };

  /// Decoded request parked for the worker pool.
  struct Job {
    WireEnvelope env;
    std::uint64_t conn_id = 0;
  };

  /// Server-side response cache entry for correlation-id redelivery.
  struct DedupEntry {
    bool done = false;
    std::uint64_t conn_id = 0;           // latest connection to answer on
    std::vector<std::uint8_t> response;  // encoded frame once done
  };

  static std::uint64_t Key(const Address& a) noexcept {
    return (static_cast<std::uint64_t>(a.kind) << 32) |
           static_cast<std::uint32_t>(a.id);
  }
  static std::uint64_t PairKey(const Address& a, const Address& b) noexcept {
    const std::uint64_t x = Key(a), y = Key(b);
    return x < y ? (x * 0x9E3779B97F4A7C15ULL) ^ y
                 : (y * 0x9E3779B97F4A7C15ULL) ^ x;
  }
  static std::uint64_t DedupKey(const Address& from,
                                std::uint64_t corr) noexcept {
    return (Key(from) * 0xD1B54A32D192ED03ULL) ^ corr;
  }

  /// The common path behind Send (kOneWay) and Call (kCall).
  Delivery Roundtrip(const Address& from, const Address& to,
                     const Message& msg, FrameKind kind, Message* resp);

  Conn* GetOrCreateConnLocked(const Address& to) D2T_REQUIRES(mu_);
  void WakeLoop();

  // --- Event-loop side (all called on loop_ only).
  void LoopMain();
  void HandleAccept(int listen_fd);
  void HandleConnEvent(int fd, std::uint32_t events);
  void ParseFrames(Conn* conn);
  void DispatchFrame(Conn* conn, WireEnvelope env);
  void FlushConn(Conn* conn);
  void TearDownConn(int fd, DeliveryError error);
  void UpdateInterest(Conn* conn);
  /// Queues an already-encoded frame on `conn` for the next flush.
  void QueueOnLoop(Conn* conn, std::vector<std::uint8_t> frame);

  // --- Worker side.
  void WorkerMain();
  void CompleteCall(std::uint64_t corr, bool ok, DeliveryError error,
                    const Message* resp);

  SocketTransportConfig config_;

  std::atomic<std::uint64_t> next_corr_{1};
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<bool> stopping_{false};   // reject new work (drain may still run)
  std::atomic<bool> loop_exit_{false};  // event loop exits at next wake
  std::atomic<bool> worker_exit_{false};
  std::atomic<bool> shut_down_{false};

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_;
  std::vector<std::thread> workers_;

  /// Transport state lock (rank 51 — taken inside Send/Call, i.e. under
  /// the cluster's placement/GL locks, alongside SimNet's link lock 50).
  /// Guards the peer/connection/pending/dedup maps and every Conn::out.
  mutable Mutex mu_ D2T_ACQUIRED_BEFORE(queue_mu_) D2T_LOCK_RANK(51);
  std::unordered_map<std::uint64_t, std::string> peers_ D2T_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> partitions_ D2T_GUARDED_BY(mu_);
  std::unordered_map<int, Address> listeners_ D2T_GUARDED_BY(mu_);
  std::unordered_map<int, std::unique_ptr<Conn>> conns_ D2T_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, int> conn_fd_by_id_ D2T_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, int> conn_fd_by_peer_ D2T_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> peers_dialed_ D2T_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> pending_
      D2T_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, DedupEntry> dedup_ D2T_GUARDED_BY(mu_);
  std::deque<std::uint64_t> dedup_fifo_ D2T_GUARDED_BY(mu_);

  /// Worker queue lock (rank 52): only ever taken after mu_ (or alone).
  Mutex queue_mu_ D2T_LOCK_RANK(52);
  std::deque<Job> jobs_ D2T_GUARDED_BY(queue_mu_);
  std::counting_semaphore<> jobs_sem_{0};
  std::atomic<std::size_t> jobs_in_flight_{0};

  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> handled_requests_{0};
};

}  // namespace d2tree
