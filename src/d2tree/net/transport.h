// Transport — the message-path abstraction between clients, MDSs and the
// Monitor.
//
// A Transport delivers (or loses) one Message per Send and prices the leg
// in microseconds. Three implementations ship:
//
//   * InProcessTransport — always delivers at zero latency. The functional
//     cluster on this transport behaves exactly like the pre-message-layer
//     direct-call implementation, so the fast test suite keeps its speed
//     and semantics.
//   * SimNetTransport (net/simnet.h) — seeded per-link latency model,
//     per-link drop probability and link-level partitions; deterministic
//     under a fixed seed.
//   * SocketTransport (net/socket_transport.h) — real TCP sockets over an
//     epoll event loop: frames of the wire codec (net/wire.h), per-peer
//     pooled connections with reconnect-on-failure, pipelined requests
//     correlated by id, and a bounded worker pool dispatching decoded
//     requests into the bound handlers. Latencies are measured wall time.
//
// Besides fire-and-forget Send, the interface carries the request/response
// contract the conformance suite (tests/test_transport_conformance.cpp)
// pins for every implementation: Bind attaches a handler to a local
// endpoint, Call delivers a request to the remote handler and returns its
// response. The default implementations route through an in-process
// handler registry priced by two Send legs, so InProcess and SimNet get
// identical semantics for free; SocketTransport overrides both to move
// the frames through real connections.
//
// The fault surface (SetLinkDropRate / SetPartitioned) is part of the
// interface so the fault injector can address network faults through the
// cluster regardless of the transport; transports without the respective
// model refuse them (return false → the injector counts the event as
// skipped).
//
// Thread-safety: Send / Call / Bind and the fault surface may be called
// concurrently from any number of client/adjuster threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "d2tree/common/mutex.h"
#include "d2tree/net/message.h"

namespace d2tree {

/// Why a leg failed — the taxonomy every transport must report the same
/// way (pinned by the conformance suite): kUndeliverable = the peer is
/// unreachable (partitioned link, no such endpoint, connection refused or
/// reset), kTimeout = the wire may have carried the message but no answer
/// arrived in time (lossy link, stuck peer). Clients treat both as a
/// failover trigger but only kTimeout legs may have executed server-side.
enum class DeliveryError : std::uint8_t { kNone = 0, kTimeout, kUndeliverable };

const char* DeliveryErrorName(DeliveryError e);

/// Outcome of one message leg. `latency_us` is the leg's network delay
/// when delivered and the sender's timeout when lost — simulated time on
/// InProcess/SimNet, measured wall time on SocketTransport.
struct [[nodiscard]] Delivery {
  bool delivered = true;
  double latency_us = 0.0;
  DeliveryError error = DeliveryError::kNone;
};

class Transport {
 public:
  /// Server-side request handler bound to one endpoint: consumes a
  /// delivered request and produces the response message. Invoked with no
  /// transport locks held, from the caller's thread (default Call) or a
  /// worker thread (SocketTransport).
  using Handler = std::function<Message(const Address& from, const Message&)>;

  virtual ~Transport() = default;

  /// Attempts to deliver `msg` from `from` to `to`.
  virtual Delivery Send(const Address& from, const Address& to,
                        const Message& msg) = 0;

  /// Binds `handler` to local endpoint `addr` (replacing any previous
  /// binding). Default: registers in the in-process handler table used by
  /// the default Call. SocketTransport additionally starts listening on
  /// the endpoint's TCP address. Returns false when the transport cannot
  /// serve the endpoint (socket bind failure).
  [[nodiscard]] virtual bool Bind(const Address& addr, Handler handler);

  /// Request/response round-trip: delivers `req` to the handler bound at
  /// `to` and fills `*resp` with its answer. An unbound/unknown `to` is
  /// surfaced as kUndeliverable; a lost leg carries the leg's error. The
  /// default implementation prices the round trip as two Send legs around
  /// an in-process handler invocation, so SimNet drops/partitions apply.
  virtual Delivery Call(const Address& from, const Address& to,
                        const Message& req, Message* resp);

  /// Reliable variant (ARQ): retransmits a lost message up to `max_tries`
  /// times, accumulating the latency of every attempt. A partitioned link
  /// still defeats it — the caller decides what an undeliverable control
  /// message means.
  Delivery SendReliable(const Address& from, const Address& to,
                        const Message& msg, int max_tries = 4);

  // --- Fault surface (no-ops unless the transport models a network).

  /// Sets the drop probability of the a⇄b link (both directions).
  [[nodiscard]] virtual bool SetLinkDropRate(const Address& a,
                                             const Address& b,
                                             double probability) {
    (void)a, (void)b, (void)probability;
    return false;
  }

  /// Cuts (or heals) the a⇄b link entirely.
  [[nodiscard]] virtual bool SetPartitioned(const Address& a,
                                            const Address& b, bool on) {
    (void)a, (void)b, (void)on;
    return false;
  }

  // --- Telemetry (monotone counters, cheap enough for the hot path).

  std::uint64_t messages_sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Total simulated latency accrued across all legs, microseconds.
  double total_latency_us() const noexcept {
    return static_cast<double>(
               latency_ns_.load(std::memory_order_relaxed)) *
           1e-3;
  }

 protected:
  /// Implementations call this once per Send with the outcome.
  void Account(const Delivery& d) noexcept {
    sent_.fetch_add(1, std::memory_order_relaxed);
    if (!d.delivered) dropped_.fetch_add(1, std::memory_order_relaxed);
    // Fixed-point ns so concurrent accumulation is order-independent.
    latency_ns_.fetch_add(static_cast<std::uint64_t>(d.latency_us * 1e3),
                          std::memory_order_relaxed);
  }

  /// Looks up the handler bound to `addr` (empty function if none).
  /// Copies the handler out under the registry lock so invocation happens
  /// lock-free.
  Handler FindHandler(const Address& addr) const;

 private:
  static std::uint64_t AddressKey(const Address& a) noexcept {
    return (static_cast<std::uint64_t>(a.kind) << 32) |
           static_cast<std::uint32_t>(a.id);
  }

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> latency_ns_{0};

  /// In-process handler registry behind the default Bind/Call. Leaf-ish
  /// rank 46 (DESIGN.md "Lock hierarchy"): taken inside Call — i.e. under
  /// the cluster's placement/GL locks — and released before the handler
  /// runs or any Send leg is priced.
  mutable Mutex handlers_mu_ D2T_LOCK_RANK(46);
  std::unordered_map<std::uint64_t, Handler> handlers_
      D2T_GUARDED_BY(handlers_mu_);
};

/// Zero-cost transport: every message is delivered instantly. Keeps
/// today's direct-call behavior (and test speed) bit-for-bit.
class InProcessTransport final : public Transport {
 public:
  Delivery Send(const Address& from, const Address& to,
                const Message& msg) override;
};

}  // namespace d2tree
