// Transport — the message-path abstraction between clients, MDSs and the
// Monitor.
//
// A Transport delivers (or loses) one Message per Send and prices the leg
// in simulated microseconds. Two implementations ship:
//
//   * InProcessTransport — always delivers at zero latency. The functional
//     cluster on this transport behaves exactly like the pre-message-layer
//     direct-call implementation, so the fast test suite keeps its speed
//     and semantics.
//   * SimNetTransport (net/simnet.h) — seeded per-link latency model,
//     per-link drop probability and link-level partitions; deterministic
//     under a fixed seed.
//
// The fault surface (SetLinkDropRate / SetPartitioned) is part of the
// interface so the fault injector can address network faults through the
// cluster regardless of the transport; transports without a network model
// refuse them (return false → the injector counts the event as skipped).
//
// Thread-safety: Send and the fault surface may be called concurrently
// from any number of client/adjuster threads.
#pragma once

#include <atomic>
#include <cstdint>

#include "d2tree/net/message.h"

namespace d2tree {

/// Outcome of one message leg. `latency_us` is simulated time: the leg's
/// network delay when delivered, the sender's timeout when lost.
struct Delivery {
  bool delivered = true;
  double latency_us = 0.0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Attempts to deliver `msg` from `from` to `to`.
  virtual Delivery Send(const Address& from, const Address& to,
                        const Message& msg) = 0;

  /// Reliable variant (ARQ): retransmits a lost message up to `max_tries`
  /// times, accumulating the latency of every attempt. A partitioned link
  /// still defeats it — the caller decides what an undeliverable control
  /// message means.
  Delivery SendReliable(const Address& from, const Address& to,
                        const Message& msg, int max_tries = 4);

  // --- Fault surface (no-ops unless the transport models a network).

  /// Sets the drop probability of the a⇄b link (both directions).
  virtual bool SetLinkDropRate(const Address& a, const Address& b,
                               double probability) {
    (void)a, (void)b, (void)probability;
    return false;
  }

  /// Cuts (or heals) the a⇄b link entirely.
  virtual bool SetPartitioned(const Address& a, const Address& b, bool on) {
    (void)a, (void)b, (void)on;
    return false;
  }

  // --- Telemetry (monotone counters, cheap enough for the hot path).

  std::uint64_t messages_sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Total simulated latency accrued across all legs, microseconds.
  double total_latency_us() const noexcept {
    return static_cast<double>(
               latency_ns_.load(std::memory_order_relaxed)) *
           1e-3;
  }

 protected:
  /// Implementations call this once per Send with the outcome.
  void Account(const Delivery& d) noexcept {
    sent_.fetch_add(1, std::memory_order_relaxed);
    if (!d.delivered) dropped_.fetch_add(1, std::memory_order_relaxed);
    // Fixed-point ns so concurrent accumulation is order-independent.
    latency_ns_.fetch_add(static_cast<std::uint64_t>(d.latency_us * 1e3),
                          std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> latency_ns_{0};
};

/// Zero-cost transport: every message is delivered instantly. Keeps
/// today's direct-call behavior (and test speed) bit-for-bit.
class InProcessTransport final : public Transport {
 public:
  Delivery Send(const Address& from, const Address& to,
                const Message& msg) override;
};

}  // namespace d2tree
