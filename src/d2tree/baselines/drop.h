// DROP (Sec. II, refs [10]/[12]): locality-preserving hashing + HDLB.
//
// DROP linearizes the namespace with a locality-preserving hash — here the
// DFS preorder rank normalized to [0,1), which keeps any subtree in one
// contiguous key interval — and gives each MDS a contiguous key range.
// Its Histogram-based Dynamic Load Balancing (HDLB) periodically moves the
// range boundaries to the load-weighted quantiles, so ranges carry load
// proportional to capacity. Balance is excellent (hash family); locality
// suffers because root→leaf paths cross range boundaries, more often as M
// grows.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "d2tree/partition/partition.h"

namespace d2tree {

struct DropConfig {
  /// Number of histogram buckets HDLB aggregates load into before moving
  /// boundaries (coarser = cheaper, less precise). 0 = exact
  /// node-granularity weighted quantiles.
  std::size_t histogram_buckets = 0;
};

class DropPartitioner : public Partitioner {
 public:
  explicit DropPartitioner(DropConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "DROP"; }

  /// Initial placement: capacity-proportional key ranges over the
  /// locality-preserving linearization (no load knowledge yet).
  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  /// One HDLB round: rebuild the load histogram along the key space and
  /// move boundaries to capacity-weighted load quantiles.
  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

  /// Key-range upper boundaries per MDS after the last build (size M,
  /// last == 1.0). Exposed for tests.
  const std::vector<double>& boundaries() const noexcept { return bounds_; }

  /// The locality-preserving key of a node: DFS rank / N.
  static std::vector<double> LocalityPreservingKeys(const NamespaceTree& tree);

 private:
  Assignment AssignFromBounds(const NamespaceTree& tree,
                              const MdsCluster& cluster) const;

  DropConfig config_;
  std::vector<double> bounds_;
  std::vector<double> keys_;  // per node, cached per tree size
  std::size_t keyed_tree_size_ = 0;
};

}  // namespace d2tree
