// AngleCut (Sec. II, ref [3]): locality-preserving hashing onto multiple
// Chord-like rings.
//
// Each node receives an *angle*: the root owns [0,1) and every directory
// subdivides its interval among children proportionally to subtree size, so
// any subtree occupies one contiguous arc (the locality-preserving
// projection). Nodes live on one of `ring_count` rings chosen by depth
// (AngleCut's multi-ring layout); every MDS owns one arc per ring, and the
// arcs are rotated between rings, which is why pathname traversals cross
// servers and locality degrades as the cluster scales (Fig. 6). Rebalance
// re-cuts the arcs at load-weighted quantiles (the ring analogue of DROP's
// HDLB), giving the hash-family's excellent balance (Fig. 7).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "d2tree/partition/partition.h"

namespace d2tree {

struct AngleCutConfig {
  /// Number of Chord-like rings; nodes map to ring (depth % ring_count).
  std::size_t ring_count = 3;
  /// Per-ring arc rotation (fraction of the circle) applied cumulatively.
  double ring_rotation = 0.37;
  /// 0 = exact node-granularity arc re-cuts; otherwise histogram buckets.
  std::size_t histogram_buckets = 0;
};

class AngleCutPartitioner : public Partitioner {
 public:
  explicit AngleCutPartitioner(AngleCutConfig config = {}) : config_(config) {}

  std::string_view name() const override { return "AngleCut"; }

  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

  /// The angle of every node (contiguous per subtree). Exposed for tests.
  static std::vector<double> ProjectAngles(const NamespaceTree& tree);

 private:
  Assignment AssignFromBounds(const NamespaceTree& tree,
                              const MdsCluster& cluster) const;
  double RingAngle(NodeId id, std::uint32_t depth) const;

  AngleCutConfig config_;
  std::vector<double> angles_;   // per node
  std::vector<double> bounds_;   // arc upper boundaries per MDS (size M)
  std::size_t angled_tree_size_ = 0;
};

}  // namespace d2tree
