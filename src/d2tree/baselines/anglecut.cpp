#include "d2tree/baselines/anglecut.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "d2tree/common/histogram.h"

namespace d2tree {

std::vector<double> AngleCutPartitioner::ProjectAngles(
    const NamespaceTree& tree) {
  // Interval subdivision: each node owns [lo, hi); children split the
  // parent's interval proportionally to subtree node counts. A node's
  // angle is its interval start — subtrees are contiguous arcs.
  std::vector<std::size_t> sizes(tree.size(), 1);
  for (std::size_t id = tree.size(); id-- > 1;)
    sizes[tree.node(id).parent] += sizes[id];

  std::vector<double> lo(tree.size(), 0.0), hi(tree.size(), 0.0);
  hi[tree.root()] = 1.0;
  for (NodeId id : tree.PreorderNodes()) {
    double start = lo[id];
    const double width = hi[id] - lo[id];
    // The node keeps an epsilon-slot at the start of its interval; each
    // child gets a window proportional to its subtree size.
    const double denom = static_cast<double>(sizes[id]);
    for (NodeId c : tree.node(id).children) {
      const double w = width * static_cast<double>(sizes[c]) / denom;
      lo[c] = start;
      hi[c] = start + w;
      start += w;
    }
  }
  return lo;
}

double AngleCutPartitioner::RingAngle(NodeId id, std::uint32_t depth) const {
  const auto ring = depth % config_.ring_count;
  double a = angles_[id] + config_.ring_rotation * static_cast<double>(ring);
  a -= std::floor(a);
  return a;
}

Assignment AngleCutPartitioner::AssignFromBounds(
    const NamespaceTree& tree, const MdsCluster& cluster) const {
  Assignment a;
  a.mds_count = cluster.size();
  a.owner.resize(tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) {
    const double angle = RingAngle(id, tree.node(id).depth);
    const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), angle);
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(it - bounds_.begin()), cluster.size() - 1);
    a.owner[id] = static_cast<MdsId>(k);
  }
  return a;
}

Assignment AngleCutPartitioner::Partition(const NamespaceTree& tree,
                                          const MdsCluster& cluster) {
  angles_ = ProjectAngles(tree);
  angled_tree_size_ = tree.size();
  bounds_.clear();
  const double total = cluster.TotalCapacity();
  double acc = 0.0;
  for (double c : cluster.capacities) {
    acc += c;
    bounds_.push_back(acc / total);
  }
  bounds_.back() = 1.0;
  return AssignFromBounds(tree, cluster);
}

RebalanceResult AngleCutPartitioner::Rebalance(const NamespaceTree& tree,
                                               const MdsCluster& cluster,
                                               const Assignment& current) {
  if (angled_tree_size_ != tree.size()) {
    angles_ = ProjectAngles(tree);
    angled_tree_size_ = tree.size();
  }
  std::vector<double> cap_shares(cluster.size());
  {
    const double total_cap = cluster.TotalCapacity();
    double acc = 0.0;
    for (std::size_t k = 0; k < cluster.size(); ++k) {
      acc += cluster.capacities[k];
      cap_shares[k] = acc / total_cap;
    }
    cap_shares.back() = 1.0;
  }

  if (config_.histogram_buckets == 0) {
    // Exact arc re-cut: weighted quantiles over ring-adjusted angles.
    std::vector<std::pair<double, double>> keyed(tree.size());
    for (NodeId id = 0; id < tree.size(); ++id) {
      keyed[id] = {RingAngle(id, tree.node(id).depth),
                   tree.node(id).individual_popularity};
    }
    std::sort(keyed.begin(), keyed.end());
    std::vector<double> sorted_keys(keyed.size()), weights(keyed.size());
    for (std::size_t r = 0; r < keyed.size(); ++r) {
      sorted_keys[r] = keyed[r].first;
      weights[r] = keyed[r].second;
    }
    bounds_ = WeightedQuantileBoundaries(sorted_keys, weights, cap_shares);
  } else {
    // Routed-load histogram over the angle axis, boundaries at bucket
    // granularity.
    const std::size_t buckets = config_.histogram_buckets;
    std::vector<double> hist(buckets, 0.0);
    for (NodeId id = 0; id < tree.size(); ++id) {
      const double angle = RingAngle(id, tree.node(id).depth);
      const auto b =
          std::min(buckets - 1, static_cast<std::size_t>(angle * buckets));
      hist[b] += tree.node(id).individual_popularity;
    }
    double total_load = 0.0;
    for (double h : hist) total_load += h;
    bounds_.assign(cluster.size(), 1.0);
    double load_acc = 0.0;
    std::size_t b = 0;
    for (std::size_t k = 0; k + 1 < cluster.size(); ++k) {
      const double target = total_load * cap_shares[k];
      while (b < buckets && load_acc + hist[b] <= target) {
        load_acc += hist[b];
        ++b;
      }
      bounds_[k] = static_cast<double>(b) / static_cast<double>(buckets);
    }
  }

  RebalanceResult r;
  r.assignment = AssignFromBounds(tree, cluster);
  r.moved_nodes = CountMovedNodes(current, r.assignment);
  return r;
}

}  // namespace d2tree
