#include "d2tree/baselines/dynamic_subtree.h"

#include <algorithm>
#include <cassert>

#include "d2tree/common/hash.h"

namespace d2tree {

void DynamicSubtreePartitioner::InitialUnits(const NamespaceTree& tree,
                                             const MdsCluster& cluster) {
  units_.clear();
  tree_size_at_build_ = tree.size();
  // Every node at initial_depth roots a subtree unit; shallower nodes are
  // singleton units hashed individually (the "directories near the root").
  for (NodeId id = 0; id < tree.size(); ++id) {
    const MetaNode& n = tree.node(id);
    if (n.depth > config_.initial_depth) continue;
    const bool subtree_unit = n.depth == config_.initial_depth;
    const std::uint64_t h = MixHash(Fnv1a64(tree.PathOf(id)) ^ config_.seed);
    units_.push_back({id, static_cast<MdsId>(h % cluster.size()),
                      /*singleton=*/!subtree_unit});
  }
}

double DynamicSubtreePartitioner::UnitLoad(const NamespaceTree& tree,
                                           const Unit& u) const {
  const double truth = u.singleton ? tree.node(u.root).individual_popularity
                                   : tree.node(u.root).subtree_popularity;
  if (config_.load_noise <= 0.0) return truth;
  // Deterministic per-(unit, round) perturbation in [-noise, +noise],
  // modeling decayed-counter measurement error.
  const std::uint64_t h =
      MixHash(HashCombine(u.root, static_cast<std::uint64_t>(round_) ^
                                      config_.seed));
  const double jitter =
      (static_cast<double>(h) * 0x1.0p-64 * 2.0 - 1.0) * config_.load_noise;
  return truth * (1.0 + jitter);
}

Assignment DynamicSubtreePartitioner::Paint(const NamespaceTree& tree,
                                            const MdsCluster& cluster) const {
  Assignment a;
  a.mds_count = cluster.size();
  a.owner.assign(tree.size(), 0);
  // Units are mutually disjoint and cover the namespace (invariant kept by
  // InitialUnits and the split step), so painting order is irrelevant.
  for (const Unit& u : units_) {
    if (u.singleton) {
      a.owner[u.root] = u.owner;
    } else {
      tree.VisitSubtree(u.root, [&](NodeId v) { a.owner[v] = u.owner; });
    }
  }
  return a;
}

Assignment DynamicSubtreePartitioner::Partition(const NamespaceTree& tree,
                                                const MdsCluster& cluster) {
  InitialUnits(tree, cluster);
  return Paint(tree, cluster);
}

RebalanceResult DynamicSubtreePartitioner::Rebalance(
    const NamespaceTree& tree, const MdsCluster& cluster,
    const Assignment& current) {
  ++round_;
  if (units_.empty() || tree_size_at_build_ != tree.size()) {
    InitialUnits(tree, cluster);
  }
  for (Unit& u : units_)  // re-home owners after cluster shrink
    if (u.owner >= static_cast<MdsId>(cluster.size()))
      u.owner = static_cast<MdsId>(
          MixHash(u.root ^ config_.seed) % cluster.size());

  std::vector<double> loads(cluster.size(), 0.0);
  for (const Unit& u : units_) loads[u.owner] += UnitLoad(tree, u);
  double total = 0.0;
  for (double l : loads) total += l;
  const double mu = total / cluster.TotalCapacity();

  std::size_t migrations = 0;
  bool progress = true;
  while (progress && migrations < config_.max_migrations_per_round) {
    progress = false;
    // Busiest and idlest servers this iteration.
    std::size_t hot = 0, cold = 0;
    for (std::size_t k = 1; k < loads.size(); ++k) {
      if (loads[k] / cluster.capacities[k] >
          loads[hot] / cluster.capacities[hot])
        hot = k;
      if (loads[k] / cluster.capacities[k] <
          loads[cold] / cluster.capacities[cold])
        cold = k;
    }
    const double ideal_hot = mu * cluster.capacities[hot];
    if (loads[hot] <= (1.0 + config_.tolerance) * ideal_hot) break;

    // Hottest unit on the overloaded server.
    std::size_t victim = units_.size();
    for (std::size_t i = 0; i < units_.size(); ++i) {
      if (units_[i].owner != static_cast<MdsId>(hot)) continue;
      if (victim == units_.size() ||
          UnitLoad(tree, units_[i]) > UnitLoad(tree, units_[victim]))
        victim = i;
    }
    if (victim == units_.size()) break;  // nothing movable

    const double vload = UnitLoad(tree, units_[victim]);
    const Unit v = units_[victim];
    if (!v.singleton && vload > config_.split_fraction * ideal_hot &&
        !tree.node(v.root).children.empty()) {
      // Too hot to move in one piece: split into children units plus the
      // root as a singleton (finer Ceph-style granularity). Disjointness
      // is preserved: the old unit's subtree = root ∪ children subtrees.
      units_[victim] = {v.root, v.owner, /*singleton=*/true};
      for (NodeId c : tree.node(v.root).children)
        units_.push_back({c, v.owner, /*singleton=*/false});
      progress = true;  // same loads, finer pieces; retry
      continue;
    }

    // Migrate the victim to the idlest server — the step that thrashes
    // when the piece alone exceeds the receiver's slack (Sec. II).
    units_[victim].owner = static_cast<MdsId>(cold);
    loads[hot] -= vload;
    loads[cold] += vload;
    ++migrations;
    progress = true;
  }

  RebalanceResult r;
  r.assignment = Paint(tree, cluster);
  r.moved_nodes = CountMovedNodes(current, r.assignment);
  return r;
}

}  // namespace d2tree
