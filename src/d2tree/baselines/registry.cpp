#include "d2tree/baselines/registry.h"

#include <stdexcept>

#include "d2tree/baselines/anglecut.h"
#include "d2tree/baselines/drop.h"
#include "d2tree/baselines/dynamic_subtree.h"
#include "d2tree/baselines/hash_mapping.h"
#include "d2tree/baselines/static_subtree.h"
#include "d2tree/core/d2tree.h"

namespace d2tree {

std::vector<std::string> AllSchemeIds() {
  return {"static-subtree", "dynamic-subtree", "d2tree",
          "anglecut",       "drop",            "hash"};
}

std::vector<std::string> PaperSchemeIds() {
  return {"static-subtree", "dynamic-subtree", "d2tree", "anglecut", "drop"};
}

std::unique_ptr<Partitioner> MakeScheme(std::string_view id) {
  if (id == "d2tree") return std::make_unique<D2TreeScheme>();
  if (id == "static-subtree")
    return std::make_unique<StaticSubtreePartitioner>();
  if (id == "dynamic-subtree")
    return std::make_unique<DynamicSubtreePartitioner>();
  if (id == "drop") return std::make_unique<DropPartitioner>();
  if (id == "anglecut") return std::make_unique<AngleCutPartitioner>();
  if (id == "hash") return std::make_unique<HashPartitioner>();
  throw std::invalid_argument("unknown scheme id: " + std::string(id));
}

}  // namespace d2tree
