// Dynamic subtree partitioning (Ceph/Kosha style, Sec. II, Sec. VI).
//
// Starts like static subtree partitioning but at finer granularity; when a
// server becomes heavily loaded it migrates subdirectories to lighter
// servers, splitting hot subtrees into their children for ever-finer
// pieces. This is the scheme whose thrashing and complexity the paper
// criticizes — faithfully reproduced here: migration picks the hottest
// movable unit, and units too hot to move get split.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "d2tree/partition/partition.h"

namespace d2tree {

struct DynamicSubtreeConfig {
  /// Initial partition granularity (deeper = finer than static's default).
  std::uint32_t initial_depth = 2;
  /// A server is overloaded when its load exceeds (1 + tolerance) × ideal.
  double tolerance = 0.15;
  /// A unit hotter than this fraction of ideal load is split into its
  /// children before migrating (finer granularity under pressure).
  double split_fraction = 0.5;
  /// Safety cap on migrations per rebalance round.
  std::size_t max_migrations_per_round = 1'000;
  /// Relative noise on per-unit load estimates. Real implementations act
  /// on decayed access counters and stale heartbeats; the resulting
  /// mis-estimates are what make migrate-on-overload thrash (Sec. II).
  double load_noise = 0.10;
  std::uint64_t seed = 0;
};

class DynamicSubtreePartitioner : public Partitioner {
 public:
  explicit DynamicSubtreePartitioner(DynamicSubtreeConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "DynamicSubtree"; }

  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  /// Migrate-on-overload with on-demand unit splitting.
  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

  /// Current number of movable units (grows as hot subtrees get split).
  std::size_t unit_count() const noexcept { return units_.size(); }

 private:
  struct Unit {
    NodeId root;
    MdsId owner;
    /// Singleton units hold just the root node (upper directories, and
    /// former subtree roots after a split); otherwise the whole subtree.
    bool singleton = false;
  };

  void InitialUnits(const NamespaceTree& tree, const MdsCluster& cluster);
  /// Load estimate as the scheme perceives it: true load perturbed by the
  /// per-round counter noise.
  double UnitLoad(const NamespaceTree& tree, const Unit& u) const;
  Assignment Paint(const NamespaceTree& tree,
                   const MdsCluster& cluster) const;

  DynamicSubtreeConfig config_;
  std::vector<Unit> units_;
  std::size_t tree_size_at_build_ = 0;
  std::size_t round_ = 0;
};

}  // namespace d2tree
