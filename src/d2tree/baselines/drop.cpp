#include "d2tree/baselines/drop.h"

#include <algorithm>
#include <cassert>

#include "d2tree/common/histogram.h"

namespace d2tree {

std::vector<double> DropPartitioner::LocalityPreservingKeys(
    const NamespaceTree& tree) {
  std::vector<double> keys(tree.size(), 0.0);
  const auto order = tree.PreorderNodes();
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    keys[order[rank]] =
        static_cast<double>(rank) / static_cast<double>(order.size());
  return keys;
}

Assignment DropPartitioner::AssignFromBounds(const NamespaceTree& tree,
                                             const MdsCluster& cluster) const {
  Assignment a;
  a.mds_count = cluster.size();
  a.owner.resize(tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) {
    const auto it =
        std::upper_bound(bounds_.begin(), bounds_.end(), keys_[id]);
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(it - bounds_.begin()), cluster.size() - 1);
    a.owner[id] = static_cast<MdsId>(k);
  }
  return a;
}

Assignment DropPartitioner::Partition(const NamespaceTree& tree,
                                      const MdsCluster& cluster) {
  keys_ = LocalityPreservingKeys(tree);
  keyed_tree_size_ = tree.size();
  // Capacity-proportional static ranges (no load information yet).
  bounds_.clear();
  const double total = cluster.TotalCapacity();
  double acc = 0.0;
  for (double c : cluster.capacities) {
    acc += c;
    bounds_.push_back(acc / total);
  }
  bounds_.back() = 1.0;
  return AssignFromBounds(tree, cluster);
}

RebalanceResult DropPartitioner::Rebalance(const NamespaceTree& tree,
                                           const MdsCluster& cluster,
                                           const Assignment& current) {
  if (keyed_tree_size_ != tree.size()) {
    keys_ = LocalityPreservingKeys(tree);
    keyed_tree_size_ = tree.size();
  }
  // Cumulative capacity shares (the quantile targets).
  std::vector<double> cap_shares(cluster.size());
  {
    const double total_cap = cluster.TotalCapacity();
    double acc = 0.0;
    for (std::size_t k = 0; k < cluster.size(); ++k) {
      acc += cluster.capacities[k];
      cap_shares[k] = acc / total_cap;
    }
    cap_shares.back() = 1.0;
  }

  if (config_.histogram_buckets == 0) {
    // Exact HDLB: node-granularity weighted quantiles along the key axis.
    // Keys are already the preorder rank / N, so nodes sorted by key are
    // just the preorder sequence.
    const auto order = tree.PreorderNodes();
    std::vector<double> sorted_keys(order.size()), weights(order.size());
    for (std::size_t r = 0; r < order.size(); ++r) {
      sorted_keys[r] = keys_[order[r]];
      weights[r] = tree.node(order[r]).individual_popularity;
    }
    bounds_ = WeightedQuantileBoundaries(sorted_keys, weights, cap_shares);
  } else {
    // Approximate HDLB: histogram of routed load along the key axis, then
    // boundaries at bucket granularity (cheaper, what real HDLB ships).
    const std::size_t buckets = config_.histogram_buckets;
    std::vector<double> hist(buckets, 0.0);
    for (NodeId id = 0; id < tree.size(); ++id) {
      const auto b = std::min(buckets - 1,
                              static_cast<std::size_t>(keys_[id] * buckets));
      hist[b] += tree.node(id).individual_popularity;
    }
    double total_load = 0.0;
    for (double h : hist) total_load += h;
    bounds_.assign(cluster.size(), 1.0);
    double load_acc = 0.0;
    std::size_t b = 0;
    for (std::size_t k = 0; k + 1 < cluster.size(); ++k) {
      const double target = total_load * cap_shares[k];
      while (b < buckets && load_acc + hist[b] <= target) {
        load_acc += hist[b];
        ++b;
      }
      bounds_[k] = static_cast<double>(b) / static_cast<double>(buckets);
    }
  }

  RebalanceResult r;
  r.assignment = AssignFromBounds(tree, cluster);
  r.moved_nodes = CountMovedNodes(current, r.assignment);
  return r;
}

}  // namespace d2tree
