// Static subtree partitioning (Sec. II, Sec. VI "Implements").
//
// "The initial metadata partition was created by hashing directories near
// the root of the hierarchy": every directory at `partition_depth` roots an
// indivisible subtree placed by hashing its path; the few nodes above that
// depth are hashed individually. Placement never reacts to load — good
// locality, potentially terrible balance, needs manual intervention in
// practice (Sec. VI-A).
#pragma once

#include <cstdint>
#include <string_view>

#include "d2tree/partition/partition.h"

namespace d2tree {

struct StaticSubtreeConfig {
  std::uint32_t partition_depth = 1;
  std::uint64_t seed = 0;
};

class StaticSubtreePartitioner : public Partitioner {
 public:
  explicit StaticSubtreePartitioner(StaticSubtreeConfig config = {})
      : config_(config) {}

  std::string_view name() const override { return "StaticSubtree"; }

  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  /// Static partitioning never migrates (its defining weakness).
  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

 private:
  StaticSubtreeConfig config_;
};

}  // namespace d2tree
