#include "d2tree/baselines/hash_mapping.h"

#include "d2tree/common/hash.h"

namespace d2tree {

Assignment HashPartitioner::Partition(const NamespaceTree& tree,
                                      const MdsCluster& cluster) {
  Assignment a;
  a.mds_count = cluster.size();
  a.owner.resize(tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) {
    const std::uint64_t h =
        MixHash(Fnv1a64(tree.PathOf(id)) ^ seed_);
    a.owner[id] = static_cast<MdsId>(h % cluster.size());
  }
  return a;
}

RebalanceResult HashPartitioner::Rebalance(const NamespaceTree& tree,
                                           const MdsCluster& cluster,
                                           const Assignment& current) {
  RebalanceResult r;
  r.assignment = current;
  if (r.assignment.owner.size() != tree.size() ||
      r.assignment.mds_count != cluster.size()) {
    // Namespace or cluster changed: rehash (the overhead the paper calls
    // "considerable" shows up as moved_nodes).
    r.assignment = Partition(tree, cluster);
    r.moved_nodes = CountMovedNodes(current, r.assignment);
  }
  return r;
}

}  // namespace d2tree
