// Factory for all schemes evaluated in Sec. VI: the five the paper compares
// (D2-Tree, static subtree, dynamic subtree, DROP, AngleCut) plus the pure
// hash baseline.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "d2tree/partition/partition.h"

namespace d2tree {

/// Scheme ids usable with MakeScheme: "d2tree", "static-subtree",
/// "dynamic-subtree", "drop", "anglecut", "hash".
std::vector<std::string> AllSchemeIds();

/// The five schemes of the paper's figures, in plot order.
std::vector<std::string> PaperSchemeIds();

/// Creates a fresh partitioner (default configuration). Throws
/// std::invalid_argument for unknown ids.
std::unique_ptr<Partitioner> MakeScheme(std::string_view id);

}  // namespace d2tree
