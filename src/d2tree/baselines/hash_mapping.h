// Pure hash-based mapping (Sec. II "Hash-Based Mapping").
//
// The CalvinFS / GIGA+ family: every metadata node is hashed by its full
// pathname to one MDS. Load spreads almost perfectly, but a pathname
// traversal visits a different server per component (terrible locality),
// and renames/cluster-scaling rehash large swaths of the namespace.
#pragma once

#include <string_view>

#include "d2tree/partition/partition.h"

namespace d2tree {

class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(std::uint64_t seed = 0) : seed_(seed) {}

  std::string_view name() const override { return "Hash"; }

  Assignment Partition(const NamespaceTree& tree,
                       const MdsCluster& cluster) override;

  /// Hash placement ignores load; rebalancing is a no-op (what makes the
  /// scheme cheap — and inflexible).
  RebalanceResult Rebalance(const NamespaceTree& tree,
                            const MdsCluster& cluster,
                            const Assignment& current) override;

 private:
  std::uint64_t seed_;
};

}  // namespace d2tree
