#include "d2tree/baselines/static_subtree.h"

#include "d2tree/common/hash.h"

namespace d2tree {

Assignment StaticSubtreePartitioner::Partition(const NamespaceTree& tree,
                                               const MdsCluster& cluster) {
  Assignment a;
  a.mds_count = cluster.size();
  a.owner.resize(tree.size());
  // Parents are created before children, so one forward pass can inherit
  // subtree ownership from the depth-`partition_depth` ancestor.
  for (NodeId id = 0; id < tree.size(); ++id) {
    const MetaNode& n = tree.node(id);
    if (n.depth <= config_.partition_depth) {
      const std::uint64_t h = MixHash(Fnv1a64(tree.PathOf(id)) ^ config_.seed);
      a.owner[id] = static_cast<MdsId>(h % cluster.size());
    } else {
      a.owner[id] = a.owner[n.parent];
    }
  }
  return a;
}

RebalanceResult StaticSubtreePartitioner::Rebalance(
    const NamespaceTree& tree, const MdsCluster& cluster,
    const Assignment& current) {
  RebalanceResult r;
  r.assignment = current;
  if (r.assignment.owner.size() != tree.size() ||
      r.assignment.mds_count != cluster.size()) {
    r.assignment = Partition(tree, cluster);
    r.moved_nodes = CountMovedNodes(current, r.assignment);
  }
  return r;
}

}  // namespace d2tree
