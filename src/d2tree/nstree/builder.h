// Synthetic namespace generation.
//
// The paper's namespaces come from three proprietary Microsoft traces
// (Table I); we rebuild statistically similar hierarchies: configurable
// node count, maximum depth (49 / 9 / 13 for DTR / LMBE / RA), directory
// ratio and a depth bias steering how "chimney-like" vs "bushy" the tree
// grows.
#pragma once

#include <cstddef>
#include <cstdint>

#include "d2tree/common/rng.h"
#include "d2tree/nstree/tree.h"

namespace d2tree {

struct SyntheticTreeConfig {
  /// Total number of nodes to create (including the root).
  std::size_t node_count = 10'000;
  /// Deepest node depth; the generator guarantees one chain reaches it.
  std::uint32_t max_depth = 12;
  /// Fraction of created nodes that are directories.
  double dir_ratio = 0.25;
  /// Probability of attaching the next node under a *recently created*
  /// directory instead of a uniformly random one. Higher values produce
  /// deeper, chain-ier trees (DTR-like); 0 produces wide flat trees
  /// (LMBE-like).
  double depth_bias = 0.3;
  /// Upper bound on children per directory (GIGA+-style huge directories
  /// can be modeled by raising this).
  std::uint32_t max_children_per_dir = 4096;
  /// Directories pre-created directly under the root before random growth;
  /// real server namespaces have wide top levels (project/user/share
  /// directories), which is what lets subtree schemes spread load.
  std::uint32_t root_fanout = 64;
};

/// Builds a random namespace satisfying the config. Deterministic in `rng`.
NamespaceTree BuildSyntheticTree(const SyntheticTreeConfig& config, Rng& rng);

}  // namespace d2tree
