#include "d2tree/nstree/tree.h"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "d2tree/common/hash.h"
#include "d2tree/common/path_util.h"

namespace d2tree {

NamespaceTree::NamespaceTree() {
  MetaNode root;
  root.name = "";
  root.parent = kInvalidNode;
  root.depth = 0;
  root.type = NodeType::kDirectory;
  nodes_.push_back(std::move(root));
}

std::uint64_t NamespaceTree::ChildKey(NodeId parent, std::string_view name) {
  return HashCombine(MixHash(parent), Fnv1a64(name));
}

NodeId NamespaceTree::FindChild(NodeId parent, std::string_view name) const {
  const auto [lo, hi] = child_index_.equal_range(ChildKey(parent, name));
  for (auto it = lo; it != hi; ++it) {
    const MetaNode& n = nodes_[it->second];
    if (n.parent == parent && n.name == name) return it->second;
  }
  return kInvalidNode;
}

NodeId NamespaceTree::AddChild(NodeId parent, std::string_view name,
                               NodeType type) {
  assert(parent < nodes_.size());
  assert(nodes_[parent].is_directory() && "files cannot have children");
  assert(FindChild(parent, name) == kInvalidNode && "duplicate child name");
  assert(!name.empty());
  const auto id = static_cast<NodeId>(nodes_.size());
  MetaNode n;
  n.name = std::string(name);
  n.parent = parent;
  n.depth = nodes_[parent].depth + 1;
  n.type = type;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  child_index_.emplace(ChildKey(parent, name), id);
  return id;
}

NodeId NamespaceTree::GetOrCreatePath(std::string_view path,
                                      NodeType leaf_type) {
  const auto components = SplitPath(path);
  NodeId cur = root();
  for (std::size_t i = 0; i < components.size(); ++i) {
    const bool is_leaf = (i + 1 == components.size());
    NodeId next = FindChild(cur, components[i]);
    if (next == kInvalidNode) {
      next = AddChild(cur, components[i],
                      is_leaf ? leaf_type : NodeType::kDirectory);
    }
    cur = next;
  }
  return cur;
}

void NamespaceTree::Rename(NodeId id, std::string_view new_name) {
  assert(id != root() && "cannot rename the root");
  assert(id < nodes_.size());
  assert(!new_name.empty());
  MetaNode& n = nodes_[id];
  assert(FindChild(n.parent, new_name) == kInvalidNode &&
         "sibling with the new name already exists");
  // Drop the old (parent, name) index entry...
  const auto [lo, hi] = child_index_.equal_range(ChildKey(n.parent, n.name));
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      child_index_.erase(it);
      break;
    }
  }
  // ...and register the new one.
  n.name = std::string(new_name);
  child_index_.emplace(ChildKey(n.parent, n.name), id);
}

NodeId NamespaceTree::Resolve(std::string_view path) const {
  const auto components = SplitPath(path);
  NodeId cur = root();
  for (const auto& c : components) {
    cur = FindChild(cur, c);
    if (cur == kInvalidNode) return kInvalidNode;
  }
  return cur;
}

std::string NamespaceTree::PathOf(NodeId id) const {
  assert(id < nodes_.size());
  if (id == root()) return "/";
  std::vector<std::string_view> parts;
  for (NodeId cur = id; cur != root(); cur = nodes_[cur].parent)
    parts.push_back(nodes_[cur].name);
  std::reverse(parts.begin(), parts.end());
  return JoinPath(parts);
}

std::vector<NodeId> NamespaceTree::AncestorsOf(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId cur = nodes_[id].parent; cur != kInvalidNode;
       cur = nodes_[cur].parent)
    out.push_back(cur);
  std::reverse(out.begin(), out.end());
  return out;
}

void NamespaceTree::AddAccess(NodeId id, double weight) {
  nodes_[id].individual_popularity += weight;
}

void NamespaceTree::SetIndividualPopularity(
    const std::vector<double>& popularity) {
  if (popularity.size() != nodes_.size())
    throw std::invalid_argument("popularity vector size mismatch");
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nodes_[i].individual_popularity = popularity[i];
}

void NamespaceTree::ResetPopularity() {
  for (auto& n : nodes_) {
    n.individual_popularity = 0.0;
    n.subtree_popularity = 0.0;
  }
}

void NamespaceTree::RecomputeSubtreePopularity() {
  // Children always have larger ids than their parent, so one reverse sweep
  // aggregates bottom-up.
  for (auto& n : nodes_) n.subtree_popularity = n.individual_popularity;
  for (std::size_t i = nodes_.size(); i-- > 1;) {
    nodes_[nodes_[i].parent].subtree_popularity += nodes_[i].subtree_popularity;
  }
}

double NamespaceTree::TotalIndividualPopularity() const {
  double total = 0.0;
  for (const auto& n : nodes_) total += n.individual_popularity;
  return total;
}

std::size_t NamespaceTree::SubtreeSize(NodeId id) const {
  std::size_t count = 0;
  VisitSubtree(id, [&](NodeId) { ++count; });
  return count;
}

std::uint32_t NamespaceTree::MaxDepth() const {
  std::uint32_t max_depth = 0;
  for (const auto& n : nodes_) max_depth = std::max(max_depth, n.depth);
  return max_depth;
}

std::vector<NodeId> NamespaceTree::PreorderNodes() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  VisitSubtree(root(), [&](NodeId v) { order.push_back(v); });
  return order;
}

void NamespaceTree::Save(std::ostream& os) const {
  os << "d2tree-namespace v1 " << nodes_.size() << "\n";
  // Preorder guarantees parents appear before children on reload.
  for (NodeId id : PreorderNodes()) {
    const MetaNode& n = nodes_[id];
    os << (n.is_directory() ? 'd' : 'f') << ' ' << n.individual_popularity
       << ' ' << n.update_cost << ' ' << PathOf(id) << "\n";
  }
}

NamespaceTree NamespaceTree::Load(std::istream& is) {
  std::string magic, version;
  std::size_t count = 0;
  if (!(is >> magic >> version >> count) || magic != "d2tree-namespace" ||
      version != "v1")
    throw std::runtime_error("bad namespace snapshot header");
  std::string line;
  std::getline(is, line);  // consume rest of header line
  NamespaceTree tree;
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(is, line))
      throw std::runtime_error("truncated namespace snapshot");
    std::istringstream ls(line);
    char kind = 0;
    double pop = 0.0, cost = 1.0;
    std::string path;
    if (!(ls >> kind >> pop >> cost >> path))
      throw std::runtime_error("bad namespace snapshot line: " + line);
    const NodeType type = kind == 'd' ? NodeType::kDirectory : NodeType::kFile;
    const NodeId id = path == "/" ? tree.root() : tree.GetOrCreatePath(path, type);
    tree.nodes_[id].individual_popularity = pop;
    tree.nodes_[id].update_cost = cost;
  }
  tree.RecomputeSubtreePopularity();
  return tree;
}

}  // namespace d2tree
