// The namespace tree: the file-system hierarchy all partitioners divide.
//
// Nodes are stored in a flat arena; a child's NodeId is always greater than
// its parent's (children are appended after their parent and nodes are never
// re-parented), which lets aggregation run as a single reverse sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "d2tree/nstree/node.h"

namespace d2tree {

class NamespaceTree {
 public:
  /// Creates a tree holding only the root directory "/".
  NamespaceTree();

  NodeId root() const noexcept { return 0; }
  std::size_t size() const noexcept { return nodes_.size(); }

  const MetaNode& node(NodeId id) const { return nodes_[id]; }

  /// Looks up a direct child by name; kInvalidNode if absent.
  NodeId FindChild(NodeId parent, std::string_view name) const;

  /// Appends a new child under `parent`. `parent` must be a directory and
  /// must not already have a child with this name.
  NodeId AddChild(NodeId parent, std::string_view name, NodeType type);

  /// Walks `path` from the root, creating missing directories along the way;
  /// the final component gets `leaf_type`. Returns the leaf node.
  NodeId GetOrCreatePath(std::string_view path, NodeType leaf_type);

  /// Resolves an absolute path to a node; kInvalidNode if any component is
  /// missing.
  NodeId Resolve(std::string_view path) const;

  /// Renames a node in place (same parent). Every descendant's *path*
  /// changes while the tree structure is untouched — the operation whose
  /// cost separates pathname-hashing schemes (rehash the whole subtree)
  /// from subtree-placement schemes (Sec. II). `id` must not be the root
  /// and `new_name` must not collide with a sibling.
  void Rename(NodeId id, std::string_view new_name);

  /// Reconstructs the absolute path of a node ("/" for the root).
  std::string PathOf(NodeId id) const;

  /// Ancestors of `id` ordered root-first, excluding `id` itself (the set
  /// A_j of Sec. III-A). Empty for the root.
  std::vector<NodeId> AncestorsOf(NodeId id) const;

  /// Records `weight` accesses addressed to node `id` (bumps p'_j).
  /// Invalidates the aggregate until RecomputeSubtreePopularity().
  void AddAccess(NodeId id, double weight = 1.0);

  /// Overwrites p'_j for every node. Sizes must match.
  void SetIndividualPopularity(const std::vector<double>& popularity);

  void SetUpdateCost(NodeId id, double cost) { nodes_[id].update_cost = cost; }

  /// Clears all p'_j (and the aggregates).
  void ResetPopularity();

  /// Recomputes p_j = p'_j + sum of children p_j for every node, bottom-up.
  void RecomputeSubtreePopularity();

  /// Sum of individual popularity over all nodes (equals the root's
  /// subtree_popularity after aggregation).
  double TotalIndividualPopularity() const;

  /// Number of nodes in the subtree rooted at `id` (including `id`).
  std::size_t SubtreeSize(NodeId id) const;

  /// Preorder visit of the subtree rooted at `id`.
  template <typename Visitor>
  void VisitSubtree(NodeId id, Visitor&& visit) const {
    std::vector<NodeId> stack{id};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      visit(v);
      const auto& kids = nodes_[v].children;
      for (auto it = kids.rbegin(); it != kids.rend(); ++it)
        stack.push_back(*it);
    }
  }

  /// Maximum node depth in the tree (root is 0).
  std::uint32_t MaxDepth() const;

  /// Nodes in depth-first (preorder) order from the root; the linearization
  /// DROP's locality-preserving hashing and the DFS mirror-division policy
  /// use.
  std::vector<NodeId> PreorderNodes() const;

  /// Writes/reads a line-oriented text snapshot (paths, types, popularity,
  /// update costs). Intended for persisting generated namespaces.
  void Save(std::ostream& os) const;
  static NamespaceTree Load(std::istream& is);

 private:
  static std::uint64_t ChildKey(NodeId parent, std::string_view name);

  std::vector<MetaNode> nodes_;
  // Hash of (parent, name) -> child. Collisions are resolved by verifying
  // the stored node's actual parent and name.
  std::unordered_multimap<std::uint64_t, NodeId> child_index_;
};

}  // namespace d2tree
