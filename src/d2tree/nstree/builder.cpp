#include "d2tree/nstree/builder.h"

#include <cassert>
#include <string>
#include <vector>

namespace d2tree {

namespace {

/// Directories still eligible to receive children.
struct OpenDirs {
  std::vector<NodeId> dirs;          // insertion order == creation order
  const NamespaceTree* tree;
  std::uint32_t max_depth;
  std::uint32_t max_children;

  bool Eligible(NodeId id) const {
    const MetaNode& n = tree->node(id);
    return n.depth < max_depth && n.children.size() < max_children;
  }

  /// Picks a parent: with probability `depth_bias` from the most recent
  /// eighth of directories (drives depth), otherwise uniformly.
  NodeId Pick(Rng& rng, double depth_bias) {
    assert(!dirs.empty());
    for (;;) {
      std::size_t idx;
      if (rng.NextBool(depth_bias) && dirs.size() >= 8) {
        const std::size_t window = dirs.size() / 8;
        idx = dirs.size() - 1 - rng.NextBounded(window);
      } else {
        idx = rng.NextBounded(dirs.size());
      }
      const NodeId id = dirs[idx];
      if (Eligible(id)) return id;
      // Swap-remove saturated directories so retries stay cheap.
      dirs[idx] = dirs.back();
      dirs.pop_back();
      assert(!dirs.empty() && "namespace generator ran out of open dirs");
    }
  }
};

}  // namespace

NamespaceTree BuildSyntheticTree(const SyntheticTreeConfig& config, Rng& rng) {
  assert(config.node_count >= config.max_depth + 1);
  NamespaceTree tree;
  OpenDirs open{{tree.root()}, &tree, config.max_depth,
                config.max_children_per_dir};

  std::size_t dir_seq = 0, file_seq = 0;

  // Wide top level first (user/project/share directories).
  for (std::uint32_t i = 0;
       i < config.root_fanout && tree.size() < config.node_count; ++i) {
    open.dirs.push_back(tree.AddChild(
        tree.root(), "d" + std::to_string(dir_seq++), NodeType::kDirectory));
  }

  // Guarantee the configured maximum depth with one directory spine.
  NodeId spine = open.dirs.size() > 1 ? open.dirs[1] : tree.root();
  for (std::uint32_t d = tree.node(spine).depth;
       d < config.max_depth && tree.size() < config.node_count; ++d) {
    spine = tree.AddChild(spine, "d" + std::to_string(dir_seq++),
                          NodeType::kDirectory);
    open.dirs.push_back(spine);
  }

  while (tree.size() < config.node_count) {
    const NodeId parent = open.Pick(rng, config.depth_bias);
    const bool make_dir = rng.NextBool(config.dir_ratio);
    if (make_dir) {
      const NodeId id = tree.AddChild(
          parent, "d" + std::to_string(dir_seq++), NodeType::kDirectory);
      open.dirs.push_back(id);
    } else {
      tree.AddChild(parent, "f" + std::to_string(file_seq++), NodeType::kFile);
    }
  }
  return tree;
}

}  // namespace d2tree
