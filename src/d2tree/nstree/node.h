// Metadata node of the namespace tree (Sec. III-A).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace d2tree {

/// Dense node handle; nodes live in NamespaceTree's arena and are never
/// deleted (renames/deletes in traces are metadata *operations*, they do not
/// shrink the modeled namespace).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

enum class NodeType : std::uint8_t { kDirectory, kFile };

/// One metadata node n_j. Popularity fields follow Def. 2:
///  * `individual_popularity` is p'_j — accesses addressed to n_j itself;
///  * `subtree_popularity` is p_j — p'_j plus the popularity funneled
///    through n_j by its descendants (POSIX traversal touches every
///    ancestor), i.e. the sum of individual popularity over the subtree.
struct MetaNode {
  std::string name;
  NodeId parent = kInvalidNode;
  std::uint32_t depth = 0;  // root is depth 0
  NodeType type = NodeType::kDirectory;
  std::vector<NodeId> children;
  double individual_popularity = 0.0;  // p'_j
  double subtree_popularity = 0.0;     // p_j (valid after aggregation pass)
  double update_cost = 1.0;            // u_j (Def. 4)

  bool is_directory() const noexcept { return type == NodeType::kDirectory; }
};

}  // namespace d2tree
