#include "d2tree/storage/store_engine.h"

#include "d2tree/storage/lsm_engine.h"
#include "d2tree/storage/memory_engine.h"
#include "d2tree/storage/sstable.h"

namespace d2tree {

void StoreEngine::InsertAll(const std::vector<InodeRecord>& records) {
  for (const InodeRecord& r : records) Put(r);
}

std::vector<InodeRecord> StoreEngine::ExtractAll(
    const std::vector<NodeId>& ids) {
  std::vector<InodeRecord> out;
  out.reserve(ids.size());
  for (NodeId id : ids) {
    auto removed = Remove(id);
    if (removed.has_value()) out.push_back(std::move(*removed));
  }
  return out;
}

std::size_t StoreEngine::IngestTableFile(const std::string& path) {
  SSTableReader reader;
  if (!reader.Open(path)) return 0;
  std::size_t ingested = 0;
  // A CRC-failed tail yields a partial ingest; the returned count
  // reflects exactly the entries that landed.
  (void)reader.Scan([this, &ingested](const SSTableEntry& entry) {
    if (entry.tombstone) {
      Remove(entry.id);
    } else {
      Put(entry.record);
      ++ingested;
    }
  });
  return ingested;
}

std::unique_ptr<StoreEngine> MakeStoreEngine(const StoreSpec& spec,
                                             const std::string& instance) {
  if (spec.backend == StoreSpec::Backend::kLsm && !spec.data_dir.empty())
    return std::make_unique<LsmEngine>(spec.data_dir + "/" + instance);
  return std::make_unique<MemoryEngine>();
}

}  // namespace d2tree
