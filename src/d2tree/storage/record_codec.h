// Durable serialization of one InodeRecord (DESIGN.md §11).
//
// This is the *storage* codec — the byte layout of a record inside the
// LSM engine's WAL entries and SSTable blocks. It is deliberately separate
// from the wire codec (net/wire.h): the wire format can evolve with the
// RPC protocol while files written by an older build keep decoding.
// Layout (all integers little-endian, durability/frame.h writers):
//
//   u32 id | u32 parent | u8 type | u32 mode | u32 uid | u32 gid |
//   u64 size | u64 mtime | u64 ctime | u64 version | u32 name_len | name
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "d2tree/mds/inode.h"

namespace d2tree {

/// Appends the encoded record to `out`.
void EncodeInodeRecord(const InodeRecord& record,
                       std::vector<std::uint8_t>& out);

/// Decodes one record occupying the whole span; nullopt on malformed
/// input (short buffer, trailing bytes, out-of-range enum).
std::optional<InodeRecord> DecodeInodeRecord(const std::uint8_t* data,
                                             std::size_t len);

}  // namespace d2tree
