// Group-committed, file-backed append log for the LSM engine
// (DESIGN.md §11).
//
// Framing is exactly durability/wal.h's (`u32 length + u32 crc32 +
// payload`, CRC over the payload only) via the shared durability/frame.h
// helpers, so d2fsck's torn-tail logic applies unchanged. The difference
// is the commit discipline: Append() only buffers the framed bytes;
// Commit() hands the whole pending batch to the OS in one write — the
// *group commit*. A batch mutation (InsertAll, ExtractAll) therefore costs
// one syscall however many records it carries, and a crash between Append
// and Commit loses only the uncommitted batch, never a committed prefix.
//
// Durability level: a committed batch survives process death (SIGKILL) —
// the bytes are in the page cache. `sync_on_commit` adds an fsync per
// commit for power-loss durability at the obvious throughput cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "d2tree/common/mutex.h"
#include "d2tree/durability/frame.h"

namespace d2tree {

class LogFile {
 public:
  LogFile() = default;
  ~LogFile();
  LogFile(const LogFile&) = delete;
  LogFile& operator=(const LogFile&) = delete;

  /// Opens (creating or appending) the log at `path`. Replays existing
  /// frames through `fn` first (same contract as frame::ScanFrames: return
  /// false to reject an undecodable payload); a torn tail is truncated off
  /// the file so fresh appends land on a clean frame boundary. Returns
  /// false when the file cannot be opened.
  [[nodiscard]] bool Open(const std::string& path, bool sync_on_commit,
            const std::function<bool(const std::uint8_t*, std::size_t)>& fn,
            frame::ScanStats* stats);

  /// Frames `payload` into the pending batch (no I/O yet).
  void Append(const std::vector<std::uint8_t>& payload);

  /// Writes the pending batch to the file in one write. Returns the
  /// number of frames committed (0 = nothing pending).
  std::size_t Commit();

  /// Truncates the log to zero length (after a memtable flush sealed its
  /// contents into a table). Drops any uncommitted batch.
  void Reset();

  /// Crash injection: discards the last `bytes` bytes of the *file*, as
  /// if the process died mid-write. Pending bytes are dropped too.
  void TearTail(std::size_t bytes);

  std::uint64_t committed_bytes() const;
  std::uint64_t group_commits() const;

 private:
  void CloseLocked() D2T_REQUIRES(mu_);

  /// Leaf lock of the storage engine (rank 43): taken with the engine
  /// lock (42) held, never the other way around (DESIGN.md §6).
  mutable Mutex mu_ D2T_LOCK_RANK(43);
  std::string path_ D2T_GUARDED_BY(mu_);
  std::FILE* file_ D2T_GUARDED_BY(mu_) = nullptr;
  bool sync_on_commit_ D2T_GUARDED_BY(mu_) = false;
  std::vector<std::uint8_t> pending_ D2T_GUARDED_BY(mu_);
  std::size_t pending_frames_ D2T_GUARDED_BY(mu_) = 0;
  std::uint64_t committed_bytes_ D2T_GUARDED_BY(mu_) = 0;
  std::uint64_t group_commits_ D2T_GUARDED_BY(mu_) = 0;
};

}  // namespace d2tree
