#include "d2tree/storage/record_codec.h"

#include "d2tree/durability/frame.h"

namespace d2tree {

void EncodeInodeRecord(const InodeRecord& r, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + 57 + r.name.size());
  frame::PutU32(out, r.id);
  frame::PutU32(out, r.parent);
  out.push_back(static_cast<std::uint8_t>(r.type));
  frame::PutU32(out, r.attrs.mode);
  frame::PutU32(out, r.attrs.uid);
  frame::PutU32(out, r.attrs.gid);
  frame::PutU64(out, r.attrs.size);
  frame::PutU64(out, r.attrs.mtime);
  frame::PutU64(out, r.attrs.ctime);
  frame::PutU64(out, r.version);
  frame::PutU32(out, static_cast<std::uint32_t>(r.name.size()));
  out.insert(out.end(), r.name.begin(), r.name.end());
}

std::optional<InodeRecord> DecodeInodeRecord(const std::uint8_t* data,
                                             std::size_t len) {
  frame::Reader in(data, len);
  InodeRecord r;
  std::uint8_t type = 0;
  std::uint32_t name_len = 0;
  if (!in.U32(&r.id) || !in.U32(&r.parent) || !in.U8(&type) ||
      !in.U32(&r.attrs.mode) || !in.U32(&r.attrs.uid) ||
      !in.U32(&r.attrs.gid) || !in.U64(&r.attrs.size) ||
      !in.U64(&r.attrs.mtime) || !in.U64(&r.attrs.ctime) ||
      !in.U64(&r.version) || !in.U32(&name_len)) {
    return std::nullopt;
  }
  if (type > static_cast<std::uint8_t>(NodeType::kFile)) return std::nullopt;
  r.type = static_cast<NodeType>(type);
  const std::uint8_t* name = in.Bytes(name_len);
  if (name == nullptr) return std::nullopt;
  r.name.assign(reinterpret_cast<const char*>(name), name_len);
  if (!in.exhausted()) return std::nullopt;
  return r;
}

}  // namespace d2tree
