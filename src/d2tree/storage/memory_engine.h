// The default StoreEngine: an ordered in-RAM map (DESIGN.md §11).
//
// Functionally identical to the original unordered_map-backed
// MetadataStore; the ordered map additionally gives ascending-id Scan so
// memory and LSM backends produce byte-identical snapshots — the property
// the backend-parameterized suite (tests/test_store_property.cpp) pins.
#pragma once

#include <map>

#include "d2tree/storage/store_engine.h"

namespace d2tree {

class MemoryEngine final : public StoreEngine {
 public:
  const char* name() const noexcept override { return "memory"; }

  void Put(const InodeRecord& record) override {
    records_[record.id] = record;
  }

  std::optional<InodeRecord> Get(NodeId id) const override {
    const auto it = records_.find(id);
    if (it == records_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(NodeId id) const override { return records_.contains(id); }

  std::optional<InodeRecord> Remove(NodeId id) override {
    const auto it = records_.find(id);
    if (it == records_.end()) return std::nullopt;
    InodeRecord out = std::move(it->second);
    records_.erase(it);
    return out;
  }

  std::size_t Size() const override { return records_.size(); }

  void Clear() override { records_.clear(); }

  /// A process restart leaves a memory engine empty: everything it held
  /// was volatile. (The LSM engine instead replays its WAL and tables.)
  StoreRecoveryInfo Reopen() override {
    records_.clear();
    return {};
  }

  void Scan(
      const std::function<void(const InodeRecord&)>& fn) const override {
    for (const auto& [id, rec] : records_) fn(rec);
  }

 private:
  std::map<NodeId, InodeRecord> records_;
};

}  // namespace d2tree
