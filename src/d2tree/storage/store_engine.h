// Pluggable backing engine behind MetadataStore (DESIGN.md §11).
//
// The MDS-facing store API (mds/store.h) is a thin, mutex-guarded façade;
// the engine underneath decides where records actually live. Two
// implementations exist:
//
//   * MemoryEngine (storage/memory_engine.h) — an ordered in-RAM map, the
//     default. Semantics match the original unordered_map store exactly;
//     Scan order is ascending id.
//   * LsmEngine (storage/lsm_engine.h) — an embedded LSM tree: sorted
//     memtable + group-committed on-disk WAL + immutable SSTables with
//     block index and bloom filter, size-tiered compaction, and bulk
//     seal/ingest of whole subtrees as sealed table files.
//
// Engines are NOT internally required to be thread-safe for the basic
// record operations: MetadataStore serializes every call under its rank-40
// mutex. LsmEngine still carries its own (higher-ranked) locks because the
// bench and tools drive it directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "d2tree/mds/inode.h"

namespace d2tree {

/// Counters an engine exposes for benches and audits. Memory engines
/// leave the file-backed fields at zero.
struct StoreEngineStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t removes = 0;
  std::uint64_t wal_group_commits = 0;  // batched WAL syncs (LSM)
  std::uint64_t wal_bytes = 0;          // bytes framed into the live WAL
  std::uint64_t flushes = 0;            // memtable → SSTable seals
  std::uint64_t compactions = 0;        // size-tiered merges
  std::uint64_t tables = 0;             // live SSTables right now
  std::uint64_t table_ingests = 0;      // sealed tables linked in
  std::uint64_t bloom_skips = 0;        // reads a bloom filter short-cut
};

/// What (re)opening an engine from its durable state found. Memory
/// engines report a trivially clean open.
struct StoreRecoveryInfo {
  bool opened_existing = false;       // durable state was present on open
  std::size_t tables_opened = 0;      // SSTables listed by the manifest
  std::size_t wal_records_replayed = 0;
  bool wal_torn_tail = false;         // WAL ended mid-frame (crash footprint)
  std::size_t wal_torn_bytes = 0;     // bytes truncated off the tear
};

class StoreEngine {
 public:
  virtual ~StoreEngine() = default;

  virtual const char* name() const noexcept = 0;

  virtual void Put(const InodeRecord& record) = 0;
  virtual std::optional<InodeRecord> Get(NodeId id) const = 0;
  [[nodiscard]] virtual bool Contains(NodeId id) const = 0;
  /// Removes a record; returns it if present.
  virtual std::optional<InodeRecord> Remove(NodeId id) = 0;
  virtual std::size_t Size() const = 0;
  virtual void Clear() = 0;

  /// Visits every live record in ascending id order.
  virtual void Scan(
      const std::function<void(const InodeRecord&)>& fn) const = 0;

  /// Bulk insert/extract. The defaults loop over Put/Get+Remove; LsmEngine
  /// overrides them to journal the whole batch under one WAL group commit.
  virtual void InsertAll(const std::vector<InodeRecord>& records);
  virtual std::vector<InodeRecord> ExtractAll(const std::vector<NodeId>& ids);

  /// Bulk-ingests a sealed SSTable file; returns the number of records it
  /// carried. The caller guarantees the table's keys are disjoint from the
  /// engine's live set (the migration protocol's ownership invariant).
  /// Default: decode the table and Put record-by-record (memory engines);
  /// LsmEngine links the file in and registers it — O(1) in record count.
  virtual std::size_t IngestTableFile(const std::string& path);

  /// Persists any volatile buffered state (LSM: seals the memtable).
  virtual void Flush() {}

  /// Drops volatile state and re-reads durable state, as if the process
  /// had crashed and restarted (LSM: manifest + table reopen + WAL replay
  /// with torn-tail truncation). No-op for memory engines: their volatile
  /// loss is modelled by the cluster's Clear()-and-rebuild recovery.
  virtual StoreRecoveryInfo Reopen() { return {}; }

  /// Crash injection: tears the last `bytes` bytes off the engine's live
  /// WAL, as if the process died mid-append. No-op for memory engines.
  virtual void TearWalTail(std::size_t bytes) { (void)bytes; }

  /// Deep storage audit: verifies every on-disk invariant the engine
  /// claims (footer magic/CRCs, block CRCs, key ordering, bloom
  /// completeness, manifest/table agreement). Returns human-readable
  /// issues; empty = clean. Memory engines are trivially clean.
  virtual std::vector<std::string> AuditStorage() const { return {}; }

  virtual StoreEngineStats Stats() const { return {}; }
};

/// How a MetadataStore's engine is chosen (cluster + daemon config).
struct StoreSpec {
  enum class Backend { kMemory, kLsm };
  Backend backend = Backend::kMemory;
  /// LSM root directory for this store instance; created on demand.
  std::string data_dir;
  /// Restrict persistence to one server id (>= 0): a daemon process hosts
  /// exactly one MDS role, so the other servers in its local cluster
  /// model are bystanders and stay in memory. -1 = every server persists.
  std::int32_t only_mds = -1;

  /// True when the spec actually produces a durable engine: the LSM
  /// backend degrades to the memory engine without a data directory.
  bool persistent() const noexcept {
    return backend == Backend::kLsm && !data_dir.empty();
  }
};

/// Builds the engine a spec names; `instance` becomes a subdirectory of
/// `spec.data_dir` so one server can keep several stores apart. Returns a
/// MemoryEngine for kMemory (or when the spec has no data dir).
std::unique_ptr<StoreEngine> MakeStoreEngine(const StoreSpec& spec,
                                             const std::string& instance);

}  // namespace d2tree
