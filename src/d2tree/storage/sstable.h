// Immutable sorted-table files (SSTables) for the LSM engine
// (DESIGN.md §11).
//
// A sealed table is written once, never modified, and read by binary
// search over an in-memory block index with a bloom filter to short-cut
// misses. The same sealed file is the unit of *bulk subtree shipping*: a
// migration source seals the extracted subtree into one table, the
// destination ingests it by file link-in — IndexFS-style bulk insertion
// instead of per-record inserts.
//
// On-disk layout (all integers little-endian, storage record codec for
// values):
//
//   data block*   entry := u32 id | u8 kind | u32 vlen | vlen bytes
//                 kind: 1 = live record (vlen = encoded InodeRecord),
//                       2 = tombstone   (vlen = 0)
//                 blocks close at ~block_bytes; ids strictly increase
//                 across the whole file.
//   index         u32 nblocks, then per block:
//                 u32 first_id | u32 last_id | u64 offset | u32 len | u32 crc
//   bloom         u32 nbits | u32 nhashes | bits (ceil(nbits/8) bytes)
//   footer (52B)  u64 index_off | u32 index_len | u32 index_crc |
//                 u64 bloom_off | u32 bloom_len | u32 bloom_crc |
//                 u64 entry_count | u32 min_id | u32 max_id | u32 magic
//
// Every region is CRC-guarded (per-block CRCs live in the index), so
// d2fsck / d2sst can audit a table without trusting any of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "d2tree/mds/inode.h"

namespace d2tree {

inline constexpr std::uint32_t kSSTableMagic = 0xD275B1E5;
inline constexpr std::size_t kSSTableFooterBytes = 52;

struct SSTableOptions {
  std::size_t block_bytes = 4096;      // data-block close threshold
  std::size_t bloom_bits_per_key = 10; // 0 disables the filter
};

/// One entry as the table stores it: a live record or a tombstone that
/// shadows older tables during reads and merges.
struct SSTableEntry {
  NodeId id = kInvalidNode;
  bool tombstone = false;
  InodeRecord record;  // valid when !tombstone

  bool operator==(const SSTableEntry&) const = default;
};

/// Streams strictly-increasing-id entries into a sealed table file.
class SSTableBuilder {
 public:
  explicit SSTableBuilder(std::string path, SSTableOptions options = {});

  /// Adds the next entry; fails (and poisons the builder) when ids are not
  /// strictly increasing or the file cannot be written.
  [[nodiscard]] bool Add(const SSTableEntry& entry);
  [[nodiscard]] bool AddRecord(const InodeRecord& record) {
    return Add({record.id, false, record});
  }
  [[nodiscard]] bool AddTombstone(NodeId id) { return Add({id, true, {}}); }

  /// Seals the table: writes index, bloom and footer, flushes the file.
  /// False when nothing was added or any write failed.
  [[nodiscard]] bool Finish();

  std::size_t entries_added() const noexcept { return count_; }
  bool failed() const noexcept { return failed_; }

 private:
  void CloseBlock();

  struct IndexEntry {
    NodeId first_id = kInvalidNode;
    NodeId last_id = kInvalidNode;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
  };

  std::string path_;
  SSTableOptions options_;
  std::ofstream out_;
  std::vector<std::uint8_t> block_;
  NodeId block_first_ = kInvalidNode;
  NodeId last_id_ = kInvalidNode;
  std::uint64_t offset_ = 0;
  std::vector<IndexEntry> index_;
  std::vector<NodeId> keys_;  // bloom input
  std::size_t count_ = 0;
  NodeId min_id_ = kInvalidNode;
  NodeId max_id_ = kInvalidNode;
  bool finished_ = false;
  bool failed_ = false;
};

/// Read side: footer + index + bloom stay in memory, data blocks are read
/// (and CRC-checked) on demand. Not internally synchronized — the LSM
/// engine serializes access under its own lock.
class SSTableReader {
 public:
  SSTableReader() = default;
  SSTableReader(SSTableReader&&) = default;
  SSTableReader& operator=(SSTableReader&&) = default;

  /// Opens and validates footer/index/bloom; false on any mismatch.
  [[nodiscard]] bool Open(const std::string& path);

  /// Point lookup. nullopt = not in this table; an engaged optional holds
  /// the entry (possibly a tombstone, which shadows older tables).
  std::optional<SSTableEntry> Get(NodeId id);

  /// Visits every entry in id order. False when a block fails its CRC.
  [[nodiscard]] bool Scan(const std::function<void(const SSTableEntry&)>& fn);

  std::uint64_t entry_count() const noexcept { return entry_count_; }
  NodeId min_id() const noexcept { return min_id_; }
  NodeId max_id() const noexcept { return max_id_; }
  const std::string& path() const noexcept { return path_; }

  /// True when the bloom filter rules the id out (read short-cut).
  bool BloomRejects(NodeId id) const;

 private:
  struct IndexEntry {
    NodeId first_id;
    NodeId last_id;
    std::uint64_t offset;
    std::uint32_t length;
    std::uint32_t crc;
  };

  [[nodiscard]] bool ReadBlock(const IndexEntry& block,
                               std::vector<std::uint8_t>* out);

  std::string path_;
  mutable std::ifstream in_;
  std::vector<IndexEntry> index_;
  std::vector<std::uint8_t> bloom_bits_;
  std::uint32_t bloom_nbits_ = 0;
  std::uint32_t bloom_nhashes_ = 0;
  std::uint64_t entry_count_ = 0;
  NodeId min_id_ = kInvalidNode;
  NodeId max_id_ = kInvalidNode;
};

/// Full offline audit of one table file: footer magic, index/bloom CRCs,
/// per-block CRCs, strict global key ordering, per-block [first,last]
/// agreement, entry count, min/max, and bloom completeness (every stored
/// id must test positive). `issues` empty = clean.
struct SSTableAudit {
  std::size_t blocks = 0;
  std::size_t entries = 0;
  std::size_t tombstones = 0;
  std::vector<std::string> issues;

  bool clean() const noexcept { return issues.empty(); }
};

SSTableAudit AuditSSTable(const std::string& path);

/// Seals `records` (any order; sorted internally) into a table at `path`.
/// The one-call path migration PREPARE uses to package a subtree.
[[nodiscard]] bool WriteRecordsTable(std::vector<InodeRecord> records,
                                     const std::string& path,
                                     SSTableOptions options = {});

}  // namespace d2tree
