#include "d2tree/storage/sstable.h"

#include <algorithm>
#include <cstring>

#include "d2tree/durability/crc32.h"
#include "d2tree/durability/frame.h"
#include "d2tree/storage/record_codec.h"

namespace d2tree {
namespace {

constexpr std::uint8_t kEntryRecord = 1;
constexpr std::uint8_t kEntryTombstone = 2;
constexpr std::size_t kIndexEntryBytes = 24;  // 2*u32 ids + u64 off + 2*u32

/// splitmix64 finalizer: the bloom filter's base hash over a node id.
std::uint64_t MixId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool BloomTest(const std::vector<std::uint8_t>& bits, std::uint32_t nbits,
               std::uint32_t nhashes, NodeId id) {
  if (nbits == 0 || nhashes == 0) return true;  // filter disabled
  const std::uint64_t h = MixId(id);
  std::uint64_t h1 = h & 0xffffffffULL;
  const std::uint64_t h2 = (h >> 32) | 1;  // odd stride
  for (std::uint32_t i = 0; i < nhashes; ++i) {
    const std::uint64_t bit = h1 % nbits;
    if ((bits[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h1 += h2;
  }
  return true;
}

void BloomSet(std::vector<std::uint8_t>& bits, std::uint32_t nbits,
              std::uint32_t nhashes, NodeId id) {
  const std::uint64_t h = MixId(id);
  std::uint64_t h1 = h & 0xffffffffULL;
  const std::uint64_t h2 = (h >> 32) | 1;
  for (std::uint32_t i = 0; i < nhashes; ++i) {
    const std::uint64_t bit = h1 % nbits;
    bits[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    h1 += h2;
  }
}

struct Footer {
  std::uint64_t index_off = 0;
  std::uint32_t index_len = 0;
  std::uint32_t index_crc = 0;
  std::uint64_t bloom_off = 0;
  std::uint32_t bloom_len = 0;
  std::uint32_t bloom_crc = 0;
  std::uint64_t entry_count = 0;
  NodeId min_id = kInvalidNode;
  NodeId max_id = kInvalidNode;
};

/// Everything Open/Audit share: footer + parsed index + bloom, loaded and
/// CRC-verified from the file. Returns false with a reason on the first
/// violated invariant.
struct TableMeta {
  Footer footer;
  std::vector<std::uint8_t> index_raw;
  std::vector<std::uint8_t> bloom_raw;
  std::uint32_t bloom_nbits = 0;
  std::uint32_t bloom_nhashes = 0;
  std::vector<std::uint8_t> bloom_bits;
};

bool LoadMeta(std::ifstream& in, TableMeta* meta, std::string* error) {
  in.seekg(0, std::ios::end);
  const std::int64_t file_size = in.tellg();
  if (file_size < static_cast<std::int64_t>(kSSTableFooterBytes)) {
    *error = "file shorter than footer";
    return false;
  }
  std::uint8_t raw[kSSTableFooterBytes];
  in.seekg(file_size - static_cast<std::int64_t>(kSSTableFooterBytes));
  in.read(reinterpret_cast<char*>(raw), kSSTableFooterBytes);
  if (!in) {
    *error = "footer read failed";
    return false;
  }
  frame::Reader r(raw, kSSTableFooterBytes);
  Footer& f = meta->footer;
  std::uint32_t magic = 0;
  if (!r.U64(&f.index_off) || !r.U32(&f.index_len) || !r.U32(&f.index_crc) ||
      !r.U64(&f.bloom_off) || !r.U32(&f.bloom_len) || !r.U32(&f.bloom_crc) ||
      !r.U64(&f.entry_count) || !r.U32(&f.min_id) || !r.U32(&f.max_id) ||
      !r.U32(&magic)) {
    *error = "footer decode failed";
    return false;
  }
  if (magic != kSSTableMagic) {
    *error = "bad footer magic";
    return false;
  }
  const auto size = static_cast<std::uint64_t>(file_size);
  if (f.index_off + f.index_len > size || f.bloom_off + f.bloom_len > size) {
    *error = "index/bloom region out of bounds";
    return false;
  }
  meta->index_raw.resize(f.index_len);
  in.seekg(static_cast<std::int64_t>(f.index_off));
  in.read(reinterpret_cast<char*>(meta->index_raw.data()), f.index_len);
  meta->bloom_raw.resize(f.bloom_len);
  in.seekg(static_cast<std::int64_t>(f.bloom_off));
  in.read(reinterpret_cast<char*>(meta->bloom_raw.data()), f.bloom_len);
  if (!in) {
    *error = "index/bloom read failed";
    return false;
  }
  if (Crc32(meta->index_raw.data(), meta->index_raw.size()) != f.index_crc) {
    *error = "index CRC mismatch";
    return false;
  }
  if (Crc32(meta->bloom_raw.data(), meta->bloom_raw.size()) != f.bloom_crc) {
    *error = "bloom CRC mismatch";
    return false;
  }
  frame::Reader b(meta->bloom_raw.data(), meta->bloom_raw.size());
  if (!b.U32(&meta->bloom_nbits) || !b.U32(&meta->bloom_nhashes)) {
    *error = "bloom header decode failed";
    return false;
  }
  const std::size_t nbytes = (meta->bloom_nbits + 7) / 8;
  const std::uint8_t* bits = b.Bytes(nbytes);
  if (bits == nullptr || !b.exhausted()) {
    *error = "bloom bits truncated";
    return false;
  }
  meta->bloom_bits.assign(bits, bits + nbytes);
  return true;
}

struct ParsedIndexEntry {
  NodeId first_id;
  NodeId last_id;
  std::uint64_t offset;
  std::uint32_t length;
  std::uint32_t crc;
};

bool ParseIndex(const std::vector<std::uint8_t>& raw,
                std::vector<ParsedIndexEntry>* out, std::string* error) {
  frame::Reader r(raw.data(), raw.size());
  std::uint32_t nblocks = 0;
  if (!r.U32(&nblocks) || r.remaining() != nblocks * kIndexEntryBytes) {
    *error = "index size disagrees with block count";
    return false;
  }
  out->reserve(nblocks);
  for (std::uint32_t i = 0; i < nblocks; ++i) {
    ParsedIndexEntry e{};
    r.U32(&e.first_id);
    r.U32(&e.last_id);
    r.U64(&e.offset);
    r.U32(&e.length);
    r.U32(&e.crc);
    out->push_back(e);
  }
  return !r.failed();
}

/// Decodes one data block into entries; false on malformed bytes.
bool ParseBlock(const std::uint8_t* data, std::size_t len,
                const std::function<bool(const SSTableEntry&)>& fn) {
  frame::Reader r(data, len);
  while (!r.exhausted()) {
    SSTableEntry entry;
    std::uint8_t kind = 0;
    std::uint32_t vlen = 0;
    if (!r.U32(&entry.id) || !r.U8(&kind) || !r.U32(&vlen)) return false;
    const std::uint8_t* value = r.Bytes(vlen);
    if (value == nullptr) return false;
    if (kind == kEntryTombstone) {
      if (vlen != 0) return false;
      entry.tombstone = true;
    } else if (kind == kEntryRecord) {
      auto rec = DecodeInodeRecord(value, vlen);
      if (!rec.has_value() || rec->id != entry.id) return false;
      entry.record = std::move(*rec);
    } else {
      return false;
    }
    if (!fn(entry)) return false;
  }
  return true;
}

}  // namespace

// --- builder --------------------------------------------------------------

SSTableBuilder::SSTableBuilder(std::string path, SSTableOptions options)
    : path_(std::move(path)),
      options_(options),
      out_(path_, std::ios::binary | std::ios::trunc) {
  if (!out_) failed_ = true;
}

bool SSTableBuilder::Add(const SSTableEntry& entry) {
  if (failed_ || finished_) return false;
  if (count_ > 0 && entry.id <= last_id_) {
    failed_ = true;  // ids must strictly increase across the file
    return false;
  }
  if (block_.empty()) block_first_ = entry.id;
  frame::PutU32(block_, entry.id);
  block_.push_back(entry.tombstone ? kEntryTombstone : kEntryRecord);
  if (entry.tombstone) {
    frame::PutU32(block_, 0);
  } else {
    std::vector<std::uint8_t> value;
    EncodeInodeRecord(entry.record, value);
    frame::PutU32(block_, static_cast<std::uint32_t>(value.size()));
    block_.insert(block_.end(), value.begin(), value.end());
  }
  last_id_ = entry.id;
  if (count_ == 0) min_id_ = entry.id;
  max_id_ = entry.id;
  ++count_;
  keys_.push_back(entry.id);
  if (block_.size() >= options_.block_bytes) CloseBlock();
  return !failed_;
}

void SSTableBuilder::CloseBlock() {
  if (block_.empty()) return;
  index_.push_back({block_first_, last_id_, offset_,
                    static_cast<std::uint32_t>(block_.size()),
                    Crc32(block_.data(), block_.size())});
  out_.write(reinterpret_cast<const char*>(block_.data()),
             static_cast<std::streamsize>(block_.size()));
  if (!out_) failed_ = true;
  offset_ += block_.size();
  block_.clear();
}

bool SSTableBuilder::Finish() {
  if (failed_ || finished_ || count_ == 0) return false;
  CloseBlock();
  finished_ = true;

  std::vector<std::uint8_t> index;
  frame::PutU32(index, static_cast<std::uint32_t>(index_.size()));
  for (const IndexEntry& e : index_) {
    frame::PutU32(index, e.first_id);
    frame::PutU32(index, e.last_id);
    frame::PutU64(index, e.offset);
    frame::PutU32(index, e.length);
    frame::PutU32(index, e.crc);
  }

  std::vector<std::uint8_t> bloom;
  std::uint32_t nbits = 0;
  std::uint32_t nhashes = 0;
  if (options_.bloom_bits_per_key > 0) {
    nbits = static_cast<std::uint32_t>(
        std::max<std::size_t>(64, options_.bloom_bits_per_key * count_));
    nhashes = 6;
  }
  frame::PutU32(bloom, nbits);
  frame::PutU32(bloom, nhashes);
  if (nbits > 0) {
    std::vector<std::uint8_t> bits((nbits + 7) / 8, 0);
    for (NodeId id : keys_) BloomSet(bits, nbits, nhashes, id);
    bloom.insert(bloom.end(), bits.begin(), bits.end());
  }

  const std::uint64_t index_off = offset_;
  const std::uint64_t bloom_off = index_off + index.size();
  out_.write(reinterpret_cast<const char*>(index.data()),
             static_cast<std::streamsize>(index.size()));
  out_.write(reinterpret_cast<const char*>(bloom.data()),
             static_cast<std::streamsize>(bloom.size()));

  std::vector<std::uint8_t> footer;
  footer.reserve(kSSTableFooterBytes);
  frame::PutU64(footer, index_off);
  frame::PutU32(footer, static_cast<std::uint32_t>(index.size()));
  frame::PutU32(footer, Crc32(index.data(), index.size()));
  frame::PutU64(footer, bloom_off);
  frame::PutU32(footer, static_cast<std::uint32_t>(bloom.size()));
  frame::PutU32(footer, Crc32(bloom.data(), bloom.size()));
  frame::PutU64(footer, count_);
  frame::PutU32(footer, min_id_);
  frame::PutU32(footer, max_id_);
  frame::PutU32(footer, kSSTableMagic);
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  out_.flush();
  if (!out_) failed_ = true;
  out_.close();
  return !failed_;
}

// --- reader ---------------------------------------------------------------

bool SSTableReader::Open(const std::string& path) {
  path_ = path;
  in_.open(path, std::ios::binary);
  if (!in_) return false;
  TableMeta meta;
  std::string error;
  if (!LoadMeta(in_, &meta, &error)) return false;
  std::vector<ParsedIndexEntry> parsed;
  if (!ParseIndex(meta.index_raw, &parsed, &error)) return false;
  index_.clear();
  index_.reserve(parsed.size());
  for (const ParsedIndexEntry& e : parsed)
    index_.push_back({e.first_id, e.last_id, e.offset, e.length, e.crc});
  bloom_bits_ = std::move(meta.bloom_bits);
  bloom_nbits_ = meta.bloom_nbits;
  bloom_nhashes_ = meta.bloom_nhashes;
  entry_count_ = meta.footer.entry_count;
  min_id_ = meta.footer.min_id;
  max_id_ = meta.footer.max_id;
  return true;
}

bool SSTableReader::BloomRejects(NodeId id) const {
  return !BloomTest(bloom_bits_, bloom_nbits_, bloom_nhashes_, id);
}

bool SSTableReader::ReadBlock(const IndexEntry& block,
                              std::vector<std::uint8_t>* out) {
  out->resize(block.length);
  in_.clear();
  in_.seekg(static_cast<std::int64_t>(block.offset));
  in_.read(reinterpret_cast<char*>(out->data()), block.length);
  if (!in_) return false;
  return Crc32(out->data(), out->size()) == block.crc;
}

std::optional<SSTableEntry> SSTableReader::Get(NodeId id) {
  if (index_.empty() || id < min_id_ || id > max_id_) return std::nullopt;
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), id,
      [](const IndexEntry& e, NodeId key) { return e.last_id < key; });
  if (it == index_.end() || id < it->first_id) return std::nullopt;
  std::vector<std::uint8_t> block;
  if (!ReadBlock(*it, &block)) return std::nullopt;
  std::optional<SSTableEntry> found;
  ParseBlock(block.data(), block.size(), [&](const SSTableEntry& entry) {
    if (entry.id == id) {
      found = entry;
      return false;  // stop the scan
    }
    return entry.id < id;
  });
  return found;
}

bool SSTableReader::Scan(
    const std::function<void(const SSTableEntry&)>& fn) {
  std::vector<std::uint8_t> block;
  for (const IndexEntry& e : index_) {
    if (!ReadBlock(e, &block)) return false;
    if (!ParseBlock(block.data(), block.size(), [&](const SSTableEntry& x) {
          fn(x);
          return true;
        })) {
      return false;
    }
  }
  return true;
}

// --- audit ----------------------------------------------------------------

SSTableAudit AuditSSTable(const std::string& path) {
  SSTableAudit audit;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    audit.issues.push_back("cannot open " + path);
    return audit;
  }
  TableMeta meta;
  std::string error;
  if (!LoadMeta(in, &meta, &error)) {
    audit.issues.push_back(path + ": " + error);
    return audit;
  }
  std::vector<ParsedIndexEntry> index;
  if (!ParseIndex(meta.index_raw, &index, &error)) {
    audit.issues.push_back(path + ": " + error);
    return audit;
  }
  audit.blocks = index.size();

  bool first = true;
  NodeId prev = 0;
  NodeId seen_min = kInvalidNode;
  NodeId seen_max = kInvalidNode;
  std::vector<std::uint8_t> block;
  for (std::size_t b = 0; b < index.size(); ++b) {
    const ParsedIndexEntry& e = index[b];
    const std::string where = path + " block " + std::to_string(b);
    block.resize(e.length);
    in.clear();
    in.seekg(static_cast<std::int64_t>(e.offset));
    in.read(reinterpret_cast<char*>(block.data()), e.length);
    if (!in) {
      audit.issues.push_back(where + ": read failed");
      continue;
    }
    if (Crc32(block.data(), block.size()) != e.crc) {
      audit.issues.push_back(where + ": CRC mismatch");
      continue;
    }
    bool block_first = true;
    NodeId block_last = 0;
    const bool ok =
        ParseBlock(block.data(), block.size(), [&](const SSTableEntry& x) {
          ++audit.entries;
          if (x.tombstone) ++audit.tombstones;
          if (block_first && x.id != e.first_id)
            audit.issues.push_back(where + ": first id disagrees with index");
          if (!first && x.id <= prev)
            audit.issues.push_back(where + ": ids not strictly increasing");
          if (!BloomTest(meta.bloom_bits, meta.bloom_nbits,
                         meta.bloom_nhashes, x.id))
            audit.issues.push_back(where + ": bloom misses stored id " +
                                   std::to_string(x.id));
          if (first) seen_min = x.id;
          seen_max = x.id;
          first = false;
          block_first = false;
          prev = x.id;
          block_last = x.id;
          return true;
        });
    if (!ok) {
      audit.issues.push_back(where + ": undecodable entry");
      continue;
    }
    if (!block_first && block_last != e.last_id)
      audit.issues.push_back(where + ": last id disagrees with index");
  }
  if (audit.entries != meta.footer.entry_count)
    audit.issues.push_back(path + ": entry count disagrees with footer");
  if (!first && (seen_min != meta.footer.min_id ||
                 seen_max != meta.footer.max_id))
    audit.issues.push_back(path + ": min/max ids disagree with footer");
  return audit;
}

bool WriteRecordsTable(std::vector<InodeRecord> records,
                       const std::string& path, SSTableOptions options) {
  std::sort(records.begin(), records.end(),
            [](const InodeRecord& a, const InodeRecord& b) {
              return a.id < b.id;
            });
  SSTableBuilder builder(path, options);
  for (const InodeRecord& r : records)
    if (!builder.AddRecord(r)) return false;
  return builder.Finish();
}

}  // namespace d2tree
