#include "d2tree/storage/lsm_engine.h"

#include <algorithm>
#include <cerrno>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "d2tree/storage/record_codec.h"

namespace d2tree {
namespace {

namespace fs = std::filesystem;

constexpr std::uint8_t kWalPut = 1;
constexpr std::uint8_t kWalRemove = 2;
constexpr const char* kManifestFile = "MANIFEST";
constexpr const char* kWalFile = "wal.log";

/// Size tier of a table: tables in the same tier are compaction peers.
std::size_t SizeTier(std::uint64_t entries, std::size_t fanout) {
  std::size_t tier = 0;
  std::uint64_t bound = 1024;  // tier 0: up to 1k entries
  while (entries > bound) {
    bound *= fanout;
    ++tier;
  }
  return tier;
}

/// Links `src` to `dst`; falls back to a copy across filesystems.
bool LinkOrCopy(const std::string& src, const std::string& dst) {
#ifndef _WIN32
  if (::link(src.c_str(), dst.c_str()) == 0) return true;
#endif
  std::error_code ec;
  fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
  return !ec;
}

}  // namespace

LsmEngine::LsmEngine(std::string dir, LsmOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  MutexLock lock(&mu_);
  // recovery_ records the open's full footprint; a failed open leaves an
  // empty engine and the constructor has no error channel beyond it.
  (void)OpenLocked(&recovery_);
}

std::string LsmEngine::TablePath(const std::string& file) const {
  return dir_ + "/" + file;
}

bool LsmEngine::OpenLocked(StoreRecoveryInfo* info) {
  mem_.clear();
  mem_bytes_ = 0;
  tables_.clear();
  next_seq_ = 1;
  live_count_ = 0;
  *info = {};

  // Manifest: ordered (oldest → newest) list of sealed tables.
  std::vector<std::pair<std::uint64_t, std::string>> listed;
  {
    std::ifstream in(TablePath(kManifestFile), std::ios::binary);
    if (in) {
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      frame::ScanFrames(
          bytes.data(), bytes.size(),
          [&listed](const std::uint8_t* payload, std::size_t len) {
            frame::Reader r(payload, len);
            std::uint64_t seq = 0;
            std::uint32_t name_len = 0;
            if (!r.U64(&seq) || !r.U32(&name_len)) return false;
            const std::uint8_t* name = r.Bytes(name_len);
            if (name == nullptr || !r.exhausted()) return false;
            listed.emplace_back(
                seq, std::string(reinterpret_cast<const char*>(name),
                                 name_len));
            return true;
          });
      info->opened_existing = true;
    } else {
      // First open of this directory: stamp an (empty) manifest right
      // away so every real store dir carries one — d2fsck --store treats
      // a missing MANIFEST as "not a store directory".
      RewriteManifestLocked();
    }
  }
  for (auto& [seq, file] : listed) {
    Table t;
    t.seq = seq;
    t.file = file;
    if (!t.reader.Open(TablePath(file))) continue;  // audit reports this
    t.entries = t.reader.entry_count();
    next_seq_ = std::max(next_seq_, seq + 1);
    tables_.push_back(std::move(t));
  }
  info->tables_opened = tables_.size();

  // WAL replay rebuilds the memtable; a torn tail is truncated in place.
  // The scan decodes into a local map (the lambda runs under the WAL's own
  // leaf lock); the result is applied to the guarded memtable afterwards.
  std::map<NodeId, std::optional<InodeRecord>> replayed;
  std::size_t replayed_bytes = 0;
  frame::ScanStats wal_scan;
  const bool wal_ok = wal_.Open(
      TablePath(kWalFile), options_.sync_on_commit,
      [&replayed, &replayed_bytes](const std::uint8_t* payload,
                                   std::size_t len) {
        frame::Reader r(payload, len);
        std::uint8_t op = 0;
        if (!r.U8(&op)) return false;
        if (op == kWalPut) {
          auto rec = DecodeInodeRecord(payload + 1, len - 1);
          if (!rec.has_value()) return false;
          replayed_bytes += len;
          const NodeId id = rec->id;
          replayed[id] = std::move(*rec);
          return true;
        }
        if (op == kWalRemove) {
          NodeId id = 0;
          if (!r.U32(&id) || !r.exhausted()) return false;
          replayed_bytes += len;
          replayed[id] = std::nullopt;
          return true;
        }
        return false;
      },
      &wal_scan);
  mem_ = std::move(replayed);
  mem_bytes_ = replayed_bytes;
  info->wal_records_replayed = wal_scan.frames;
  info->wal_torn_tail = wal_scan.torn_tail;
  info->wal_torn_bytes = wal_scan.torn_bytes;
  if (wal_scan.frames > 0 || wal_scan.torn_tail) info->opened_existing = true;

  live_count_ = MergedLocked().size();
  return wal_ok;
}

void LsmEngine::JournalPutLocked(const InodeRecord& record) {
  std::vector<std::uint8_t> payload;
  payload.push_back(kWalPut);
  EncodeInodeRecord(record, payload);
  mem_bytes_ += payload.size();
  wal_.Append(payload);
}

void LsmEngine::JournalRemoveLocked(NodeId id) {
  std::vector<std::uint8_t> payload;
  payload.push_back(kWalRemove);
  frame::PutU32(payload, id);
  mem_bytes_ += payload.size();
  wal_.Append(payload);
}

std::optional<SSTableEntry> LsmEngine::LookupLocked(NodeId id) const {
  const auto it = mem_.find(id);
  if (it != mem_.end()) {
    if (!it->second.has_value()) return SSTableEntry{id, true, {}};
    return SSTableEntry{id, false, *it->second};
  }
  for (auto t = tables_.rbegin(); t != tables_.rend(); ++t) {
    if (t->reader.BloomRejects(id)) {
      ++stats_.bloom_skips;
      continue;
    }
    auto entry = t->reader.Get(id);
    if (entry.has_value()) return entry;
  }
  return std::nullopt;
}

std::map<NodeId, InodeRecord> LsmEngine::MergedLocked() const {
  std::map<NodeId, std::optional<InodeRecord>> acc;
  for (auto& t : tables_) {
    // Best-effort merged view: a CRC-failed block skips its entries here;
    // AuditStorage is the path that reports the damage.
    (void)t.reader.Scan([&acc](const SSTableEntry& e) {
      if (e.tombstone) {
        acc[e.id] = std::nullopt;
      } else {
        acc[e.id] = e.record;
      }
    });
  }
  for (const auto& [id, rec] : mem_) acc[id] = rec;
  std::map<NodeId, InodeRecord> live;
  for (auto& [id, rec] : acc)
    if (rec.has_value()) live.emplace(id, std::move(*rec));
  return live;
}

void LsmEngine::Put(const InodeRecord& record) {
  MutexLock lock(&mu_);
  const auto prior = LookupLocked(record.id);
  if (!prior.has_value() || prior->tombstone) ++live_count_;
  JournalPutLocked(record);
  wal_.Commit();
  mem_[record.id] = record;
  ++stats_.puts;
  MaybeFlushLocked();
}

std::optional<InodeRecord> LsmEngine::Get(NodeId id) const {
  MutexLock lock(&mu_);
  ++stats_.gets;
  const auto entry = LookupLocked(id);
  if (!entry.has_value() || entry->tombstone) return std::nullopt;
  return entry->record;
}

bool LsmEngine::Contains(NodeId id) const {
  MutexLock lock(&mu_);
  ++stats_.gets;
  const auto entry = LookupLocked(id);
  return entry.has_value() && !entry->tombstone;
}

std::optional<InodeRecord> LsmEngine::Remove(NodeId id) {
  MutexLock lock(&mu_);
  const auto prior = LookupLocked(id);
  if (!prior.has_value() || prior->tombstone) return std::nullopt;
  JournalRemoveLocked(id);
  wal_.Commit();
  mem_[id] = std::nullopt;
  --live_count_;
  ++stats_.removes;
  MaybeFlushLocked();
  return prior->record;
}

std::size_t LsmEngine::Size() const {
  MutexLock lock(&mu_);
  return live_count_;
}

void LsmEngine::Clear() {
  MutexLock lock(&mu_);
  mem_.clear();
  mem_bytes_ = 0;
  for (const Table& t : tables_) {
    std::error_code ec;
    fs::remove(TablePath(t.file), ec);
  }
  tables_.clear();
  live_count_ = 0;
  RewriteManifestLocked();
  wal_.Reset();
}

void LsmEngine::Scan(
    const std::function<void(const InodeRecord&)>& fn) const {
  MutexLock lock(&mu_);
  for (const auto& [id, rec] : MergedLocked()) fn(rec);
}

void LsmEngine::InsertAll(const std::vector<InodeRecord>& records) {
  MutexLock lock(&mu_);
  for (const InodeRecord& r : records) {
    const auto prior = LookupLocked(r.id);
    if (!prior.has_value() || prior->tombstone) ++live_count_;
    JournalPutLocked(r);
    mem_[r.id] = r;
    ++stats_.puts;
  }
  wal_.Commit();  // one group commit for the whole batch
  MaybeFlushLocked();
}

std::vector<InodeRecord> LsmEngine::ExtractAll(
    const std::vector<NodeId>& ids) {
  MutexLock lock(&mu_);
  std::vector<InodeRecord> out;
  out.reserve(ids.size());
  for (NodeId id : ids) {
    const auto prior = LookupLocked(id);
    if (!prior.has_value() || prior->tombstone) continue;
    JournalRemoveLocked(id);
    mem_[id] = std::nullopt;
    --live_count_;
    ++stats_.removes;
    out.push_back(prior->record);
  }
  wal_.Commit();  // one group commit for the whole batch
  MaybeFlushLocked();
  return out;
}

std::size_t LsmEngine::IngestTableFile(const std::string& path) {
  MutexLock lock(&mu_);
  // Seal the memtable first: nothing volatile may shadow the ingested
  // table (e.g. a tombstone left by an earlier extraction of these keys).
  // If the seal fails the shadowing guarantee is gone — refuse the ingest.
  if (!mem_.empty() && !FlushLocked()) return 0;

  Table t;
  t.seq = next_seq_++;
  t.file = std::to_string(t.seq) + ".sst";
  if (!LinkOrCopy(path, TablePath(t.file))) return 0;
  if (!t.reader.Open(TablePath(t.file))) {
    std::error_code ec;
    fs::remove(TablePath(t.file), ec);
    return 0;
  }
  t.entries = t.reader.entry_count();
  const std::size_t ingested = t.entries;
  tables_.push_back(std::move(t));
  live_count_ += ingested;  // caller guarantees key-disjointness
  RewriteManifestLocked();
  ++stats_.table_ingests;
  MaybeCompactLocked();
  return ingested;
}

void LsmEngine::Flush() {
  MutexLock lock(&mu_);
  // On a failed seal the memtable stays put and the next flush retries.
  if (!mem_.empty() && FlushLocked()) MaybeCompactLocked();
}

void LsmEngine::MaybeFlushLocked() {
  if (mem_bytes_ < options_.memtable_limit_bytes) return;
  if (FlushLocked()) MaybeCompactLocked();
}

bool LsmEngine::FlushLocked() {
  if (mem_.empty()) return false;
  Table t;
  t.seq = next_seq_++;
  t.file = std::to_string(t.seq) + ".sst";
  SSTableBuilder builder(TablePath(t.file), options_.table);
  for (const auto& [id, rec] : mem_) {
    // A failed Add poisons the builder; Finish() below reports it.
    if (rec.has_value()) {
      (void)builder.AddRecord(*rec);
    } else {
      (void)builder.AddTombstone(id);
    }
  }
  if (!builder.Finish()) return false;
  if (!t.reader.Open(TablePath(t.file))) return false;
  t.entries = t.reader.entry_count();
  tables_.push_back(std::move(t));
  RewriteManifestLocked();
  mem_.clear();
  mem_bytes_ = 0;
  wal_.Reset();  // everything journaled is now sealed
  ++stats_.flushes;
  return true;
}

void LsmEngine::MaybeCompactLocked() {
  // Size-tiered: merge the first contiguous run (oldest → newest) of
  // `tier_fanout` tables sharing a size tier. Contiguity preserves the
  // newest-wins shadowing order; loop until no run qualifies.
  bool merged = true;
  while (merged && tables_.size() >= options_.tier_fanout) {
    merged = false;
    for (std::size_t start = 0; start + options_.tier_fanout <= tables_.size();
         ++start) {
      const std::size_t tier =
          SizeTier(tables_[start].entries, options_.tier_fanout);
      std::size_t end = start + 1;
      while (end < tables_.size() &&
             SizeTier(tables_[end].entries, options_.tier_fanout) == tier) {
        ++end;
      }
      if (end - start < options_.tier_fanout) {
        start = end - 1;
        continue;
      }
      // Merge [start, end): apply oldest → newest, newest wins. Tombstones
      // survive unless nothing older than the run exists.
      const bool drop_tombstones = start == 0;
      std::map<NodeId, std::optional<InodeRecord>> acc;
      bool read_ok = true;
      for (std::size_t i = start; i < end; ++i) {
        read_ok &= tables_[i].reader.Scan([&acc](const SSTableEntry& e) {
          if (e.tombstone) {
            acc[e.id] = std::nullopt;
          } else {
            acc[e.id] = e.record;
          }
        });
      }
      // A CRC-failed block means the merged output would silently drop
      // entries — leave the run un-compacted for AuditStorage to report.
      if (!read_ok) return;
      Table t;
      t.seq = next_seq_++;
      t.file = std::to_string(t.seq) + ".sst";
      SSTableBuilder builder(TablePath(t.file), options_.table);
      for (const auto& [id, rec] : acc) {
        // A failed Add poisons the builder; Finish() below reports it.
        if (rec.has_value()) {
          (void)builder.AddRecord(*rec);
        } else if (!drop_tombstones) {
          (void)builder.AddTombstone(id);
        }
      }
      std::vector<std::string> old_files;
      for (std::size_t i = start; i < end; ++i)
        old_files.push_back(tables_[i].file);
      if (builder.entries_added() == 0 || builder.Finish()) {
        if (builder.entries_added() == 0) {
          // All-tombstone run compacted away entirely; drop the stray file
          // the builder's constructor created.
          std::error_code ec;
          fs::remove(TablePath(t.file), ec);
        } else {
          if (!t.reader.Open(TablePath(t.file))) break;
          t.entries = t.reader.entry_count();
        }
        tables_.erase(tables_.begin() + static_cast<std::ptrdiff_t>(start),
                      tables_.begin() + static_cast<std::ptrdiff_t>(end));
        if (builder.entries_added() > 0) {
          tables_.insert(tables_.begin() + static_cast<std::ptrdiff_t>(start),
                         std::move(t));
        }
        RewriteManifestLocked();
        for (const std::string& f : old_files) {
          std::error_code ec;
          fs::remove(TablePath(f), ec);
        }
        ++stats_.compactions;
        merged = true;
      }
      break;  // re-scan from the front after any structural change
    }
  }
}

void LsmEngine::RewriteManifestLocked() {
  std::vector<std::uint8_t> bytes;
  for (const Table& t : tables_) {
    std::vector<std::uint8_t> payload;
    frame::PutU64(payload, t.seq);
    frame::PutU32(payload, static_cast<std::uint32_t>(t.file.size()));
    payload.insert(payload.end(), t.file.begin(), t.file.end());
    frame::AppendFrame(bytes, payload);
  }
  const std::string tmp = TablePath(std::string(kManifestFile) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return;
  }
  std::error_code ec;
  fs::rename(tmp, TablePath(kManifestFile), ec);
}

StoreRecoveryInfo LsmEngine::Reopen() {
  MutexLock lock(&mu_);
  StoreRecoveryInfo info;
  // `info` carries the reopen footprint either way; a failed open shows
  // up there (and in the audit), not as a separate error path.
  (void)OpenLocked(&info);
  recovery_ = info;
  return info;
}

void LsmEngine::TearWalTail(std::size_t bytes) {
  wal_.TearTail(bytes);
}

std::vector<std::string> LsmEngine::AuditStorage() const {
  MutexLock lock(&mu_);
  std::vector<std::string> issues;
  for (const Table& t : tables_) {
    const SSTableAudit audit = AuditSSTable(TablePath(t.file));
    for (const std::string& issue : audit.issues) issues.push_back(issue);
    if (audit.clean() && audit.entries != t.entries)
      issues.push_back(TablePath(t.file) +
                       ": live handle disagrees with file entry count");
  }
  const std::size_t merged = MergedLocked().size();
  if (merged != live_count_)
    issues.push_back(dir_ + ": live-record count " +
                     std::to_string(live_count_) +
                     " disagrees with merged view " + std::to_string(merged));
  return issues;
}

StoreEngineStats LsmEngine::Stats() const {
  MutexLock lock(&mu_);
  StoreEngineStats out = stats_;
  out.tables = tables_.size();
  out.wal_group_commits = wal_.group_commits();
  out.wal_bytes = wal_.committed_bytes();
  return out;
}

StoreRecoveryInfo LsmEngine::last_recovery() const {
  MutexLock lock(&mu_);
  return recovery_;
}

}  // namespace d2tree
