// Embedded LSM-tree StoreEngine (DESIGN.md §11).
//
// Write path: every mutation is journaled into a group-committed WAL
// (storage/log_file.h, durability/wal framing) and applied to a sorted
// memtable. When the memtable crosses its size limit it is sealed into an
// immutable SSTable (storage/sstable.h), the manifest is rewritten
// atomically (tmp + rename), and the WAL is reset. Size-tiered compaction
// merges contiguous runs of similar-sized tables, dropping tombstones
// only when the run includes the oldest table (nothing older left to
// shadow).
//
// Read path: memtable first, then tables newest → oldest, each gated by
// its bloom filter. A tombstone anywhere shadows everything older.
//
// Bulk shipping: IngestTableFile() links a sealed table into the
// directory and registers it as the newest table — O(1) in record count.
// The memtable is flushed first so no stale memtable entry (e.g. a
// tombstone from a prior extraction) can shadow the ingested records.
//
// Crash recovery: open reads the manifest, reopens every listed table,
// and replays the WAL into a fresh memtable; a torn WAL tail is detected
// by the CRC framing and truncated (StoreRecoveryInfo reports it).
//
// Locking: one engine mutex (rank 42) over memtable + table list +
// manifest, taken after the MetadataStore mutex (40); the WAL's own leaf
// lock is rank 43. See DESIGN.md §6.
#pragma once

#include <map>

#include "d2tree/common/mutex.h"
#include "d2tree/storage/log_file.h"
#include "d2tree/storage/sstable.h"
#include "d2tree/storage/store_engine.h"

namespace d2tree {

struct LsmOptions {
  std::size_t memtable_limit_bytes = 4 << 20;
  SSTableOptions table;        // data-block size, bloom bits per key
  std::size_t tier_fanout = 4; // compact a contiguous run of this many
                               // similar-sized tables into one
  bool sync_on_commit = false; // fsync each WAL group commit (power-loss
                               // durability; default is process-crash)
};

class LsmEngine final : public StoreEngine {
 public:
  /// Opens (or creates) the store rooted at `dir` and recovers its
  /// durable state; `last_recovery()` reports what was found.
  explicit LsmEngine(std::string dir, LsmOptions options = {});

  const char* name() const noexcept override { return "lsm"; }

  void Put(const InodeRecord& record) override;
  std::optional<InodeRecord> Get(NodeId id) const override;
  [[nodiscard]] bool Contains(NodeId id) const override;
  std::optional<InodeRecord> Remove(NodeId id) override;
  std::size_t Size() const override;
  void Clear() override;
  void Scan(const std::function<void(const InodeRecord&)>& fn) const override;

  void InsertAll(const std::vector<InodeRecord>& records) override;
  std::vector<InodeRecord> ExtractAll(const std::vector<NodeId>& ids) override;
  std::size_t IngestTableFile(const std::string& path) override;

  void Flush() override;
  StoreRecoveryInfo Reopen() override;
  void TearWalTail(std::size_t bytes) override;
  std::vector<std::string> AuditStorage() const override;
  StoreEngineStats Stats() const override;

  StoreRecoveryInfo last_recovery() const;
  const std::string& dir() const noexcept { return dir_; }

 private:
  struct Table {
    std::uint64_t seq = 0;
    std::string file;  // basename within dir_
    std::uint64_t entries = 0;
    SSTableReader reader;
  };

  [[nodiscard]] bool OpenLocked(StoreRecoveryInfo* info) D2T_REQUIRES(mu_);
  void JournalPutLocked(const InodeRecord& record) D2T_REQUIRES(mu_);
  void JournalRemoveLocked(NodeId id) D2T_REQUIRES(mu_);
  /// Memtable lookup, then tables newest → oldest (bloom-gated).
  std::optional<SSTableEntry> LookupLocked(NodeId id) const
      D2T_REQUIRES(mu_);
  /// Merged live view (oldest table → newest → memtable, tombstones out).
  std::map<NodeId, InodeRecord> MergedLocked() const D2T_REQUIRES(mu_);
  void MaybeFlushLocked() D2T_REQUIRES(mu_);
  [[nodiscard]] bool FlushLocked() D2T_REQUIRES(mu_);
  void MaybeCompactLocked() D2T_REQUIRES(mu_);
  void RewriteManifestLocked() D2T_REQUIRES(mu_);
  std::string TablePath(const std::string& file) const;

  std::string dir_;
  LsmOptions options_;

  /// Engine lock, rank 42: after the store façade's lock (40), before the
  /// WAL leaf lock (43). See DESIGN.md §6.
  mutable Mutex mu_ D2T_LOCK_RANK(42);
  /// Sorted memtable; nullopt value = tombstone.
  std::map<NodeId, std::optional<InodeRecord>> mem_ D2T_GUARDED_BY(mu_);
  std::size_t mem_bytes_ D2T_GUARDED_BY(mu_) = 0;
  /// Oldest → newest. Mutable: reads seek within table files.
  mutable std::vector<Table> tables_ D2T_GUARDED_BY(mu_);
  std::uint64_t next_seq_ D2T_GUARDED_BY(mu_) = 1;
  std::size_t live_count_ D2T_GUARDED_BY(mu_) = 0;
  StoreRecoveryInfo recovery_ D2T_GUARDED_BY(mu_);
  mutable StoreEngineStats stats_ D2T_GUARDED_BY(mu_);
  LogFile wal_;  // internally locked (rank 43)
};

}  // namespace d2tree
