#include "d2tree/storage/log_file.h"

#include <filesystem>

#ifdef _WIN32
#else
#include <unistd.h>
#endif

namespace d2tree {

LogFile::~LogFile() {
  MutexLock lock(&mu_);
  CloseLocked();
}

void LogFile::CloseLocked() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool LogFile::Open(
    const std::string& path, bool sync_on_commit,
    const std::function<bool(const std::uint8_t*, std::size_t)>& fn,
    frame::ScanStats* stats) {
  MutexLock lock(&mu_);
  CloseLocked();
  path_ = path;
  sync_on_commit_ = sync_on_commit;
  pending_.clear();
  pending_frames_ = 0;
  committed_bytes_ = 0;

  std::vector<std::uint8_t> existing;
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec && size > 0) {
      existing.resize(size);
      std::FILE* in = std::fopen(path.c_str(), "rb");
      if (in != nullptr) {
        const std::size_t got =
            std::fread(existing.data(), 1, existing.size(), in);
        existing.resize(got);
        std::fclose(in);
      } else {
        existing.clear();
      }
    }
  }
  frame::ScanStats scan =
      frame::ScanFrames(existing.data(), existing.size(), fn);
  if (stats != nullptr) *stats = scan;

  if (scan.torn_tail) {
    // Truncate the tear so fresh appends land on a frame boundary.
    std::FILE* trunc = std::fopen(path.c_str(), "wb");
    if (trunc == nullptr) return false;
    if (scan.bytes_scanned > 0)
      std::fwrite(existing.data(), 1, scan.bytes_scanned, trunc);
    std::fclose(trunc);
  }

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) return false;
  committed_bytes_ = scan.bytes_scanned;
  return true;
}

void LogFile::Append(const std::vector<std::uint8_t>& payload) {
  MutexLock lock(&mu_);
  frame::AppendFrame(pending_, payload);
  ++pending_frames_;
}

std::size_t LogFile::Commit() {
  MutexLock lock(&mu_);
  if (pending_.empty() || file_ == nullptr) {
    const std::size_t n = pending_frames_;
    pending_.clear();
    pending_frames_ = 0;
    return file_ == nullptr ? 0 : n;
  }
  const std::size_t wrote =
      std::fwrite(pending_.data(), 1, pending_.size(), file_);
  std::fflush(file_);
#ifndef _WIN32
  if (sync_on_commit_) ::fsync(fileno(file_));
#endif
  committed_bytes_ += wrote;
  ++group_commits_;
  const std::size_t frames = pending_frames_;
  pending_.clear();
  pending_frames_ = 0;
  return frames;
}

void LogFile::Reset() {
  MutexLock lock(&mu_);
  pending_.clear();
  pending_frames_ = 0;
  CloseLocked();
  std::FILE* trunc = std::fopen(path_.c_str(), "wb");
  if (trunc != nullptr) std::fclose(trunc);
  file_ = std::fopen(path_.c_str(), "ab");
  committed_bytes_ = 0;
}

void LogFile::TearTail(std::size_t bytes) {
  MutexLock lock(&mu_);
  pending_.clear();
  pending_frames_ = 0;
  CloseLocked();
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (!ec) {
    const std::uintmax_t keep = size - std::min<std::uintmax_t>(bytes, size);
    std::filesystem::resize_file(path_, keep, ec);
    committed_bytes_ = keep;
  }
  file_ = std::fopen(path_.c_str(), "ab");
}

std::uint64_t LogFile::committed_bytes() const {
  MutexLock lock(&mu_);
  return committed_bytes_;
}

std::uint64_t LogFile::group_commits() const {
  MutexLock lock(&mu_);
  return group_commits_;
}

}  // namespace d2tree
